// Tests for snapshot/fork execution (core/snapshot.hpp): copy-on-write
// page isolation, the SnapshotPool eviction policy, checkpoint-resume vs
// full-replay equivalence at the executor level, eviction fallback, and
// the end-to-end Table I determinism sweep
// {snapshot on, off} x {dfs, bfs, random, coverage} x jobs {1, 4}.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "smt/eval.hpp"
#include "spec/registry.hpp"
#include "vp/vp_executor.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

using core::ConcreteMemory;
using core::SearchKind;
using core::Snapshot;

// -- Copy-on-write page semantics. ------------------------------------------

TEST(CowMemory, CopySharesPagesUntilFirstWrite) {
  ConcreteMemory a;
  a.write8(0x10, 7);
  ConcreteMemory b = a;  // table copy: zero pages duplicated so far
  EXPECT_EQ(b.read8(0x10), 7);

  b.write8(0x10, 9);  // CoW break in b only
  EXPECT_EQ(a.read8(0x10), 7);
  EXPECT_EQ(b.read8(0x10), 9);
  EXPECT_EQ(a.pages_copied(), 0u);
  EXPECT_EQ(b.pages_copied() - a.pages_copied(), 1u);
}

TEST(CowMemory, SiblingForksAreIsolated) {
  ConcreteMemory parent;
  parent.write(0x100, 4, 0xcafebabe);
  ConcreteMemory fork1 = parent;
  ConcreteMemory fork2 = parent;
  fork1.write8(0x100, 0x11);
  fork2.write8(0x100, 0x22);
  EXPECT_EQ(parent.read(0x100, 4), 0xcafebabeu);
  EXPECT_EQ(fork1.read8(0x100), 0x11);
  EXPECT_EQ(fork2.read8(0x100), 0x22);
  // A write to an already-private page must not copy again.
  uint64_t copies = fork1.pages_copied();
  fork1.write8(0x101, 0x33);
  EXPECT_EQ(fork1.pages_copied(), copies);
}

TEST(CowMemory, ResetRebindsImagePagesWithoutCopying) {
  ConcreteMemory image;
  for (uint32_t p = 0; p < 16; ++p)
    image.write8(p * ConcreteMemory::kPageSize, 0xab);

  smt::Context ctx;
  core::ConcolicMemory mem(ctx);
  for (int run = 0; run < 3; ++run) {
    mem.reset(image);
    EXPECT_EQ(mem.concrete().num_pages(), 16u);
    EXPECT_EQ(mem.concrete().pages_copied(), 0u) << "reset copied a page";
    EXPECT_EQ(mem.read_concrete(0, 1), 0xabu);
  }
  // The first write after a reset breaks exactly one page...
  mem.store(0x2, 1, interp::sval(0x44, 8));
  EXPECT_EQ(mem.concrete().pages_copied(), 1u);
  // ...privately: the image (and thus the next reset) is untouched.
  EXPECT_EQ(image.read8(0x2), 0);
  mem.reset(image);
  EXPECT_EQ(mem.read_concrete(0x2, 1), 0u);
}

TEST(CowMemory, ReshadowOnlyTouchesChangedBytes) {
  smt::Context ctx;
  core::ConcolicMemory mem(ctx);
  ConcreteMemory image;
  image.write8(0x50, 1);
  mem.reset(image);
  smt::ExprRef var = ctx.var("in_0", 8);
  mem.poke_symbolic(0x1000, var, 0x00);
  uint64_t copies_after_poke = mem.concrete().pages_copied();

  // Same value under the new seed: no write, no CoW break.
  smt::Assignment same;
  same.set(var->var_id, 0x00);
  smt::CachingEvaluator eval_same(same);
  mem.reshadow(eval_same);
  EXPECT_EQ(mem.concrete().pages_copied(), copies_after_poke);

  // Changed value: the shadow byte is rewritten.
  smt::Assignment changed;
  changed.set(var->var_id, 0x7f);
  smt::CachingEvaluator eval_changed(changed);
  mem.reshadow(eval_changed);
  EXPECT_EQ(mem.read_concrete(0x1000, 1), 0x7fu);
}

// -- SnapshotPool. -----------------------------------------------------------

std::shared_ptr<const Snapshot> snapshot_at_depth(size_t depth) {
  auto snap = std::make_shared<Snapshot>();
  snap->branches.resize(depth);
  return snap;
}

TEST(SnapshotPool, EvictsLowestDepthTimesReuseScore) {
  core::SnapshotPool pool(2);
  auto deep = snapshot_at_depth(5);
  auto shallow = snapshot_at_depth(1);
  pool.insert(deep);
  pool.insert(deep);  // reuse bump: score (5+1)*2
  pool.insert(shallow);  // score (1+1)*1
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.evictions(), 0u);

  std::weak_ptr<const Snapshot> deep_handle = deep;
  std::weak_ptr<const Snapshot> shallow_handle = shallow;
  deep.reset();
  shallow.reset();

  pool.insert(snapshot_at_depth(3));  // over budget: shallow must go
  EXPECT_EQ(pool.evictions(), 1u);
  EXPECT_TRUE(shallow_handle.expired());
  EXPECT_FALSE(deep_handle.expired());
}

TEST(SnapshotPool, ZeroBudgetKeepsNothing) {
  core::SnapshotPool pool(0);
  auto snap = snapshot_at_depth(4);
  std::weak_ptr<const Snapshot> handle = snap;
  pool.insert(snap);
  snap.reset();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(handle.expired());
}

TEST(SnapshotPool, DeepestAtMostSelectsByDepth) {
  std::vector<std::shared_ptr<const Snapshot>> captures = {
      snapshot_at_depth(2), snapshot_at_depth(5), snapshot_at_depth(9)};
  EXPECT_EQ(core::deepest_at_most(captures, 1), nullptr);
  EXPECT_EQ(core::deepest_at_most(captures, 2)->depth(), 2u);
  EXPECT_EQ(core::deepest_at_most(captures, 7)->depth(), 5u);
  EXPECT_EQ(core::deepest_at_most(captures, 100)->depth(), 9u);
  EXPECT_EQ(core::deepest_at_most({}, 3), nullptr);
}

// -- Executor-level resume vs full-replay equivalence. -----------------------

class SnapshotExecutorTest : public ::testing::Test {
 protected:
  SnapshotExecutorTest() { spec::install_rv32im(registry, table); }

  core::Program load(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

// Three sequential symbolic branches plus a symbolic-value store: enough
// state for a checkpoint to carry registers, memory shadow and output.
constexpr const char* kThreeBranchGuest = R"(
_start:
    la a0, buf
    li a1, 3
    li a7, 2
    ecall
    la s0, buf
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    lbu t2, 2(s0)
    sb t1, 3(s0)
    bnez t0, skip1
    li a0, 0x41
    li a7, 1
    ecall
skip1:
    bltu t1, t2, skip2
    nop
skip2:
    beqz t2, skip3
    nop
skip3:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 4
)";

void expect_traces_equal(const core::PathTrace& a, const core::PathTrace& b) {
  ASSERT_EQ(a.branches.size(), b.branches.size());
  for (size_t i = 0; i < a.branches.size(); ++i) {
    EXPECT_EQ(a.branches[i].cond, b.branches[i].cond) << "branch " << i;
    EXPECT_EQ(a.branches[i].taken, b.branches[i].taken) << "branch " << i;
    EXPECT_EQ(a.branches[i].pc, b.branches[i].pc) << "branch " << i;
  }
  ASSERT_EQ(a.assumptions.size(), b.assumptions.size());
  for (size_t i = 0; i < a.assumptions.size(); ++i) {
    EXPECT_EQ(a.assumptions[i].branch_index, b.assumptions[i].branch_index);
    EXPECT_EQ(a.assumptions[i].expr, b.assumptions[i].expr);
  }
  EXPECT_EQ(a.input_vars, b.input_vars);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.exit, b.exit);
  EXPECT_EQ(a.exit_code, b.exit_code);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].id, b.failures[i].id);
    EXPECT_EQ(a.failures[i].pc, b.failures[i].pc);
  }
}

TEST_F(SnapshotExecutorTest, ResumeReproducesFullReplayBitForBit) {
  core::Program program = load(kThreeBranchGuest);
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);

  // Capture checkpoints at every branch depth under the all-zero seed.
  std::vector<std::shared_ptr<const Snapshot>> captures;
  core::SnapshotPlan plan{&captures, 1};
  core::PathTrace base;
  executor.run_with_snapshots(smt::Assignment{}, base, plan);
  ASSERT_EQ(base.branches.size(), 3u);
  ASSERT_GE(captures.size(), 2u);

  // A seed that agrees with the all-zero run on branch 0 (in_0 == 0) but
  // changes everything from branch 1 on.
  smt::Assignment flipped;
  flipped.set(ctx.var("in_0", 8)->var_id, 0);
  flipped.set(ctx.var("in_1", 8)->var_id, 2);
  flipped.set(ctx.var("in_2", 8)->var_id, 7);

  core::PathTrace replayed;
  executor.run(flipped, replayed);
  EXPECT_NE(replayed.output, "");  // branch 0 not taken -> putchar('A')

  for (const auto& snap : captures) {
    if (snap->depth() > 1) continue;  // prefix beyond branch 0 differs
    core::PathTrace resumed;
    ASSERT_TRUE(executor.resume(*snap, flipped, resumed,
                                core::SnapshotPlan{nullptr, 1}));
    expect_traces_equal(replayed, resumed);
  }
}

TEST_F(SnapshotExecutorTest, ResumeDoesNotLeakWritesIntoSiblings) {
  core::Program program = load(kThreeBranchGuest);
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);

  std::vector<std::shared_ptr<const Snapshot>> captures;
  core::SnapshotPlan plan{&captures, 1};
  core::PathTrace base;
  executor.run_with_snapshots(smt::Assignment{}, base, plan);
  auto snap = core::deepest_at_most(captures, 1);
  ASSERT_NE(snap, nullptr);

  // Resume two sibling forks with different in_1 (stored to buf+3 by the
  // guest before the first branch, so the differing byte lives in the
  // checkpoint's re-shadowed memory). Each fork's copy-on-write state must
  // not leak into the shared snapshot: the second resume must see the
  // snapshot's state, not the first fork's.
  core::PathTrace traces[2];
  std::string outputs[2];
  for (int fork = 0; fork < 2; ++fork) {
    smt::Assignment seed;
    seed.set(ctx.var("in_1", 8)->var_id, fork == 0 ? 0x11 : 0x22);
    ASSERT_TRUE(executor.resume(*snap, seed, traces[fork],
                                core::SnapshotPlan{nullptr, 1}));
    core::PathTrace replayed;
    executor.run(seed, replayed);
    expect_traces_equal(replayed, traces[fork]);
  }
}

TEST_F(SnapshotExecutorTest, VpExecutorRestoresQuantumKeeper) {
  core::Program program = load(kThreeBranchGuest);
  smt::Context ctx;
  vp::VpExecutor executor(ctx, decoder, registry, program);

  std::vector<std::shared_ptr<const Snapshot>> captures;
  core::SnapshotPlan plan{&captures, 1};
  core::PathTrace base;
  executor.run_with_snapshots(smt::Assignment{}, base, plan);
  ASSERT_GE(captures.size(), 1u);
  EXPECT_NE(captures.front()->extra, nullptr);

  smt::Assignment seed;
  seed.set(ctx.var("in_2", 8)->var_id, 1);
  const uint64_t cycles_before_replay = executor.quantum_keeper().cycles();
  core::PathTrace replayed;
  executor.run(seed, replayed);
  const uint64_t replay_cycles =
      executor.quantum_keeper().cycles() - cycles_before_replay;

  core::PathTrace resumed;
  ASSERT_TRUE(executor.resume(*captures.front(), seed, resumed,
                              core::SnapshotPlan{nullptr, 1}));
  expect_traces_equal(replayed, resumed);
  // Simulated time is part of the restored state. The keeper is monotonic
  // across runs, and the capturing run started at cycle 0, so the resumed
  // run must end at exactly prefix + suffix cycles — the same simulated
  // duration the full replay took.
  EXPECT_EQ(executor.quantum_keeper().cycles(), replay_cycles);
}

// -- Engine-level: fallback paths and the determinism sweep. -----------------

class SnapshotEngineTest : public SnapshotExecutorTest {
 protected:
  core::WorkerFactory factory_for(const core::Program& program,
                                  const std::string& engine = "binsym") {
    return [this, &program, engine](unsigned) {
      core::WorkerResources r;
      r.ctx = std::make_unique<smt::Context>();
      if (engine == "vp") {
        r.executor = std::make_unique<vp::VpExecutor>(*r.ctx, decoder,
                                                      registry, program);
      } else {
        r.executor = std::make_unique<core::BinSymExecutor>(
            *r.ctx, decoder, registry, program);
      }
      r.solver = smt::make_z3_solver(*r.ctx);
      return r;
    };
  }

  struct Exploration {
    core::EngineStats stats;
    std::set<std::string> path_keys;
    std::multiset<uint32_t> failures;
  };

  Exploration explore(const core::Program& program,
                      core::EngineOptions options,
                      const std::string& engine = "binsym") {
    core::DseEngine dse(factory_for(program, engine), options);
    Exploration result;
    result.stats = dse.explore([&](const core::PathResult& path) {
      std::string key;
      key.reserve(path.trace.branches.size());
      for (const core::BranchRecord& b : path.trace.branches)
        key += b.taken ? '1' : '0';
      result.path_keys.insert(key);
      for (const core::Failure& f : path.trace.failures)
        result.failures.insert(f.id);
    });
    return result;
  }
};

constexpr const char* kGuardedFailureGuest = R"(
_start:
    la a0, buf
    li a1, 3
    li a7, 2
    ecall
    la s0, buf
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    lbu t2, 2(s0)
    li t3, 0x21
    bne t0, t3, skip1
    li a0, 7
    li a7, 3
    ecall
skip1:
    bltu t1, t2, skip2
    nop
skip2:
    beqz t2, skip3
    nop
skip3:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 3
)";

TEST_F(SnapshotEngineTest, TinyBudgetFallsBackToReplayWithIdenticalPaths) {
  core::Program program = load(kGuardedFailureGuest);
  core::EngineOptions off;
  off.snapshots = false;
  Exploration reference = explore(program, off);
  EXPECT_EQ(reference.stats.snapshot_hits, 0u);
  EXPECT_EQ(reference.stats.snapshot_captures, 0u);

  // A one-entry pool evicts almost every checkpoint: expired handles must
  // fall back to full replay and still discover the identical path set.
  core::EngineOptions tiny;
  tiny.snapshot_budget = 1;
  tiny.snapshot_interval = 1;
  Exploration starved = explore(program, tiny);
  EXPECT_GT(starved.stats.snapshot_misses, 0u);
  EXPECT_EQ(starved.path_keys, reference.path_keys);
  EXPECT_EQ(starved.failures, reference.failures);

  core::EngineOptions roomy;  // snapshots on (default), dense captures so
  roomy.snapshot_interval = 1;  // even this 3-branch guest checkpoints
  Exploration resumed = explore(program, roomy);
  EXPECT_GT(resumed.stats.snapshot_hits, 0u);
  EXPECT_EQ(resumed.path_keys, reference.path_keys);
  EXPECT_EQ(resumed.failures, reference.failures);
}

TEST_F(SnapshotEngineTest, FailurePrefixesSurviveResume) {
  // The failing ecall sits *before* two more branch sites, so deeper flips
  // resume from checkpoints whose trace prefix already contains the
  // failure record — it must be replicated into every descendant path.
  core::Program program = load(kGuardedFailureGuest);
  core::EngineOptions off;
  off.snapshots = false;
  core::EngineOptions on;
  on.snapshot_interval = 1;
  Exploration reference = explore(program, off);
  Exploration resumed = explore(program, on);
  EXPECT_GE(reference.failures.count(7), 1u);
  EXPECT_EQ(resumed.failures, reference.failures);
  EXPECT_EQ(resumed.path_keys, reference.path_keys);
}

TEST_F(SnapshotEngineTest, VpEngineExploresIdenticallyWithSnapshots) {
  core::Program program = workloads::load_workload(table, "clif-parser");
  core::EngineOptions off;
  off.snapshots = false;
  core::EngineOptions on;
  Exploration reference = explore(program, off, "vp");
  Exploration resumed = explore(program, on, "vp");
  EXPECT_GT(resumed.stats.snapshot_hits, 0u);
  EXPECT_EQ(resumed.stats.paths, reference.stats.paths);
  EXPECT_EQ(resumed.path_keys, reference.path_keys);
}

// -- Table I determinism sweep: {snapshot on, off} x strategies x jobs. ------
//
// Snapshots change how a scheduled flip is *executed*, never which flips
// are scheduled, so the discovered path set must stay bit-identical to the
// replay engine across every strategy and worker count — the property that
// keeps Table I reproduction intact (and the acceptance bar of this
// subsystem).

class SnapshotDeterminism : public SnapshotEngineTest,
                            public ::testing::WithParamInterface<const char*> {
};

TEST_P(SnapshotDeterminism, PathSetInvariantAcrossSnapshotsStrategiesJobs) {
  core::Program program = workloads::load_workload(table, GetParam());
  core::EngineOptions reference_options;
  reference_options.snapshots = false;
  Exploration reference = explore(program, reference_options);
  EXPECT_GT(reference.stats.paths, 100u);
  EXPECT_EQ(reference.stats.paths, reference.path_keys.size());

  for (bool snapshots : {true, false}) {
    for (SearchKind kind : core::all_search_kinds()) {
      for (unsigned jobs : {1u, 4u}) {
        if (!snapshots && kind == SearchKind::kDepthFirst && jobs == 1)
          continue;  // the reference configuration
        core::EngineOptions options;
        options.snapshots = snapshots;
        options.search = kind;
        options.jobs = jobs;
        Exploration run = explore(program, options);
        std::string label = std::string(snapshots ? "snapshot" : "replay") +
                            " " + core::search_kind_name(kind) + " jobs=" +
                            std::to_string(jobs);
        EXPECT_EQ(run.stats.paths, reference.stats.paths) << label;
        EXPECT_EQ(run.path_keys, reference.path_keys) << label;
        EXPECT_EQ(run.failures, reference.failures) << label;
        if (snapshots && jobs == 1) {
          EXPECT_GT(run.stats.snapshot_hits, 0u) << label;
        }
        if (!snapshots) {
          EXPECT_EQ(run.stats.snapshot_captures, 0u) << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, SnapshotDeterminism,
                         ::testing::Values("base64-encode", "bubble-sort",
                                           "clif-parser", "insertion-sort",
                                           "uri-parser"));

}  // namespace
}  // namespace binsym
