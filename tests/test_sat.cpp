// Tests for the in-tree SAT solver and bit-blasting backend: CDCL unit
// behaviour, hand-built CNF instances, and differential properties against
// both the concrete evaluator and Z3 on random expression queries.
#include <gtest/gtest.h>

#include "smt/eval.hpp"
#include "smt/sat/bitblast.hpp"
#include "smt/sat/cdcl.hpp"
#include "smt/solver.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"

namespace binsym::smt {
namespace {

using sat::CdclSolver;
using sat::Lit;
using sat::make_lit;
using sat::SatResult;
using sat::Var;

TEST(Cdcl, TrivialSat) {
  CdclSolver solver;
  Var a = solver.new_var();
  EXPECT_TRUE(solver.add_clause({make_lit(a, false)}));
  EXPECT_EQ(solver.solve(), SatResult::kSat);
  EXPECT_TRUE(solver.value(a));
}

TEST(Cdcl, TrivialUnsat) {
  CdclSolver solver;
  Var a = solver.new_var();
  solver.add_clause({make_lit(a, false)});
  EXPECT_FALSE(solver.add_clause({make_lit(a, true)}));
  EXPECT_EQ(solver.solve(), SatResult::kUnsat);
}

TEST(Cdcl, PropagationChain) {
  // (a) & (~a | b) & (~b | c)  =>  a, b, c all true.
  CdclSolver solver;
  Var a = solver.new_var(), b = solver.new_var(), c = solver.new_var();
  solver.add_clause({make_lit(a, false)});
  solver.add_clause({make_lit(a, true), make_lit(b, false)});
  solver.add_clause({make_lit(b, true), make_lit(c, false)});
  ASSERT_EQ(solver.solve(), SatResult::kSat);
  EXPECT_TRUE(solver.value(a));
  EXPECT_TRUE(solver.value(b));
  EXPECT_TRUE(solver.value(c));
}

TEST(Cdcl, RequiresConflictAnalysis) {
  // Pigeonhole PHP(3,2): 3 pigeons, 2 holes — classic small unsat that
  // forces learning. Variables p[i][j] = pigeon i in hole j.
  CdclSolver solver;
  Var p[3][2];
  for (auto& row : p)
    for (Var& v : row) v = solver.new_var();
  for (int i = 0; i < 3; ++i)
    solver.add_clause({make_lit(p[i][0], false), make_lit(p[i][1], false)});
  for (int j = 0; j < 2; ++j)
    for (int i1 = 0; i1 < 3; ++i1)
      for (int i2 = i1 + 1; i2 < 3; ++i2)
        solver.add_clause({make_lit(p[i1][j], true), make_lit(p[i2][j], true)});
  EXPECT_EQ(solver.solve(), SatResult::kUnsat);
  EXPECT_GT(solver.stats().conflicts, 0u);
}

TEST(Cdcl, TautologyAndDuplicatesHandled) {
  CdclSolver solver;
  Var a = solver.new_var(), b = solver.new_var();
  EXPECT_TRUE(solver.add_clause(
      {make_lit(a, false), make_lit(a, true)}));  // tautology dropped
  EXPECT_TRUE(solver.add_clause(
      {make_lit(b, false), make_lit(b, false)}));  // dedup -> unit
  EXPECT_EQ(solver.solve(), SatResult::kSat);
  EXPECT_TRUE(solver.value(b));
}

TEST(Cdcl, RandomInstancesAgreeWithBruteForce) {
  // Random 3-CNF over 10 vars; compare against exhaustive enumeration.
  Rng rng(2024);
  for (int round = 0; round < 40; ++round) {
    const int num_vars = 10;
    const int num_clauses = 35 + static_cast<int>(rng.below(20));
    std::vector<std::vector<Lit>> clauses;
    for (int i = 0; i < num_clauses; ++i) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k)
        clause.push_back(make_lit(static_cast<Var>(rng.below(num_vars)),
                                  rng.flip()));
      clauses.push_back(clause);
    }

    bool brute_sat = false;
    for (uint32_t model = 0; model < (1u << num_vars) && !brute_sat; ++model) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (Lit lit : clause)
          any |= (((model >> sat::lit_var(lit)) & 1) != 0) !=
                 sat::lit_negated(lit);
        all &= any;
      }
      brute_sat = all;
    }

    CdclSolver solver;
    for (int v = 0; v < num_vars; ++v) solver.new_var();
    bool consistent = true;
    for (auto& clause : clauses)
      consistent = solver.add_clause(std::move(clause)) && consistent;
    bool cdcl_sat = consistent && solver.solve() == SatResult::kSat;
    EXPECT_EQ(cdcl_sat, brute_sat) << "round " << round;
  }
}

// -- Bit-blasting backend. ------------------------------------------------------

TEST(Bitblast, SimpleArithmetic) {
  Context ctx;
  auto solver = make_bitblast_solver(ctx);
  ExprRef x = ctx.var("x", 8);
  // x + 3 == 10 has the unique solution x == 7.
  std::vector<ExprRef> query = {
      ctx.eq(ctx.add(x, ctx.constant(3, 8)), ctx.constant(10, 8))};
  Assignment model;
  ASSERT_EQ(solver->check(query, &model), CheckResult::kSat);
  EXPECT_EQ(model.get(x->var_id), 7u);
  // ... and x must not also be 8.
  query.push_back(ctx.eq(x, ctx.constant(8, 8)));
  EXPECT_EQ(solver->check(query, nullptr), CheckResult::kUnsat);
}

TEST(Bitblast, MultiplicationInverse) {
  Context ctx;
  auto solver = make_bitblast_solver(ctx);
  ExprRef x = ctx.var("x", 16);
  std::vector<ExprRef> query = {
      ctx.eq(ctx.mul(x, ctx.constant(7, 16)), ctx.constant(49, 16)),
      ctx.ult(x, ctx.constant(100, 16))};
  Assignment model;
  ASSERT_EQ(solver->check(query, &model), CheckResult::kSat);
  EXPECT_EQ(model.get(x->var_id) * 7 % 65536, 49u);
}

TEST(Bitblast, DivisionSemantics) {
  Context ctx;
  auto solver = make_bitblast_solver(ctx);
  ExprRef x = ctx.var("x", 8);
  // x / 0 == 0xff for every x (bvudiv), so asserting != is unsat.
  std::vector<ExprRef> query = {ctx.not_(
      ctx.eq(ctx.udiv(x, ctx.constant(0, 8)), ctx.constant(0xff, 8)))};
  EXPECT_EQ(solver->check(query, nullptr), CheckResult::kUnsat);
  // x % 0 == x.
  query = {ctx.not_(ctx.eq(ctx.urem(x, ctx.constant(0, 8)), x))};
  EXPECT_EQ(solver->check(query, nullptr), CheckResult::kUnsat);
}

TEST(Bitblast, ShiftSaturation) {
  Context ctx;
  auto solver = make_bitblast_solver(ctx);
  ExprRef x = ctx.var("x", 8);
  ExprRef amount = ctx.var("n", 8);
  // n >= 8 -> x << n == 0 (SMT saturation): its negation with n == 9 is
  // unsat.
  std::vector<ExprRef> query = {
      ctx.eq(amount, ctx.constant(9, 8)),
      ctx.not_(ctx.eq(ctx.shl(x, amount), ctx.constant(0, 8)))};
  EXPECT_EQ(solver->check(query, nullptr), CheckResult::kUnsat);
}

class BitblastVsZ3 : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitblastVsZ3, AgreeOnRandomQueries) {
  // Random small expressions, checked for sat/unsat agreement between the
  // in-tree backend and Z3; sat models are validated by evaluation.
  Rng rng(GetParam());
  Context ctx;
  auto z3 = make_z3_solver(ctx);
  auto bb = make_bitblast_solver(ctx);

  ExprRef x = ctx.var("x", 8);
  ExprRef y = ctx.var("y", 8);
  for (int round = 0; round < 12; ++round) {
    // Build a random constraint pair over x, y.
    auto random_term = [&](ExprRef a, ExprRef b) -> ExprRef {
      switch (rng.below(7)) {
        case 0: return ctx.add(a, b);
        case 1: return ctx.mul(a, b);
        case 2: return ctx.xor_(a, b);
        case 3: return ctx.shl(a, ctx.constant(rng.below(10), 8));
        case 4: return ctx.udiv(a, b);
        case 5: return ctx.srem(a, b);
        default: return ctx.sub(a, b);
      }
    };
    ExprRef t1 = random_term(x, y);
    ExprRef t2 = random_term(y, x);
    std::vector<ExprRef> query = {
        ctx.eq(t1, ctx.constant(rng.next(), 8)),
        ctx.ule(t2, ctx.constant(rng.next(), 8)),
    };
    Assignment z3_model, bb_model;
    CheckResult z3_result = z3->check(query, &z3_model);
    CheckResult bb_result = bb->check(query, &bb_model);
    ASSERT_EQ(z3_result, bb_result) << "round " << round;
    if (bb_result == CheckResult::kSat) {
      for (ExprRef assertion : query)
        EXPECT_EQ(evaluate(assertion, bb_model), 1u) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitblastVsZ3, ::testing::Range<uint64_t>(1, 9));

TEST(Bitblast, SignedDivisionCorners) {
  Context ctx;
  auto solver = make_bitblast_solver(ctx);
  // INT_MIN / -1 wraps to INT_MIN (8-bit: -128 / -1 == -128).
  ExprRef int_min = ctx.constant(0x80, 8);
  ExprRef minus1 = ctx.constant(0xff, 8);
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query = {ctx.eq(x, ctx.sdiv(int_min, minus1))};
  Assignment model;
  ASSERT_EQ(solver->check(query, &model), CheckResult::kSat);
  EXPECT_EQ(model.get(x->var_id), 0x80u);
  // -7 srem 3 == -1 (sign follows dividend).
  query = {ctx.eq(x, ctx.srem(ctx.constant(0xf9, 8), ctx.constant(3, 8)))};
  ASSERT_EQ(solver->check(query, &model), CheckResult::kSat);
  EXPECT_EQ(model.get(x->var_id), 0xffu);
}

}  // namespace
}  // namespace binsym::smt
