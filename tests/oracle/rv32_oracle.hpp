// Independent RV32IM golden model for differential testing.
//
// Deliberately written WITHOUT the DSL, the interpreter templates or the
// lifter: a single switch over decoded instructions, transcribed directly
// from the RISC-V unprivileged manual (v20191213) in plain C++. The spec
// interpreter and the correct lifter are both checked against it over
// randomized machine states — the validation methodology that exposed the
// five angr bugs, turned inward.
#pragma once

#include <cstdint>
#include <functional>

#include "isa/decoder.hpp"

namespace binsym::oracle {

struct OracleState {
  uint32_t regs[32] = {};
  uint32_t pc = 0;
  // Byte-granular memory accessors supplied by the test harness.
  std::function<uint8_t(uint32_t)> load8;
  std::function<void(uint32_t, uint8_t)> store8;

  uint32_t reg(unsigned i) const { return i == 0 ? 0 : regs[i]; }
  void set_reg(unsigned i, uint32_t v) {
    if (i != 0) regs[i] = v;
  }

  uint32_t load(uint32_t addr, unsigned bytes) const {
    uint32_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
      v |= static_cast<uint32_t>(load8(addr + i)) << (8 * i);
    return v;
  }
  void store(uint32_t addr, unsigned bytes, uint32_t v) const {
    for (unsigned i = 0; i < bytes; ++i)
      store8(addr + i, static_cast<uint8_t>(v >> (8 * i)));
  }
};

/// Execute one decoded instruction; updates registers, memory and pc.
/// Returns false for instructions outside RV32IM coverage (CSR/system).
inline bool oracle_step(OracleState& s, const isa::Decoded& d) {
  const uint32_t rs1 = s.reg(d.rs1());
  const uint32_t rs2 = s.reg(d.rs2());
  const int32_t srs1 = static_cast<int32_t>(rs1);
  const int32_t srs2 = static_cast<int32_t>(rs2);
  const uint32_t imm = d.immediate();
  const int32_t simm = static_cast<int32_t>(imm);
  uint32_t next_pc = s.pc + d.size;

  switch (d.id()) {
    case isa::kLUI:   s.set_reg(d.rd(), imm); break;
    case isa::kAUIPC: s.set_reg(d.rd(), s.pc + imm); break;
    case isa::kJAL:
      s.set_reg(d.rd(), s.pc + d.size);
      next_pc = s.pc + imm;
      break;
    case isa::kJALR: {
      uint32_t target = (rs1 + imm) & ~1u;
      s.set_reg(d.rd(), s.pc + d.size);
      next_pc = target;
      break;
    }
    case isa::kBEQ:  if (rs1 == rs2) next_pc = s.pc + imm; break;
    case isa::kBNE:  if (rs1 != rs2) next_pc = s.pc + imm; break;
    case isa::kBLT:  if (srs1 < srs2) next_pc = s.pc + imm; break;
    case isa::kBGE:  if (srs1 >= srs2) next_pc = s.pc + imm; break;
    case isa::kBLTU: if (rs1 < rs2) next_pc = s.pc + imm; break;
    case isa::kBGEU: if (rs1 >= rs2) next_pc = s.pc + imm; break;

    case isa::kLB:
      s.set_reg(d.rd(), static_cast<uint32_t>(
                            static_cast<int8_t>(s.load(rs1 + imm, 1))));
      break;
    case isa::kLH:
      s.set_reg(d.rd(), static_cast<uint32_t>(
                            static_cast<int16_t>(s.load(rs1 + imm, 2))));
      break;
    case isa::kLW:  s.set_reg(d.rd(), s.load(rs1 + imm, 4)); break;
    case isa::kLBU: s.set_reg(d.rd(), s.load(rs1 + imm, 1)); break;
    case isa::kLHU: s.set_reg(d.rd(), s.load(rs1 + imm, 2)); break;
    case isa::kSB:  s.store(rs1 + imm, 1, rs2); break;
    case isa::kSH:  s.store(rs1 + imm, 2, rs2); break;
    case isa::kSW:  s.store(rs1 + imm, 4, rs2); break;

    case isa::kADDI:  s.set_reg(d.rd(), rs1 + imm); break;
    case isa::kSLTI:  s.set_reg(d.rd(), srs1 < simm ? 1 : 0); break;
    case isa::kSLTIU: s.set_reg(d.rd(), rs1 < imm ? 1 : 0); break;
    case isa::kXORI:  s.set_reg(d.rd(), rs1 ^ imm); break;
    case isa::kORI:   s.set_reg(d.rd(), rs1 | imm); break;
    case isa::kANDI:  s.set_reg(d.rd(), rs1 & imm); break;
    case isa::kSLLI:  s.set_reg(d.rd(), rs1 << d.shamt()); break;
    case isa::kSRLI:  s.set_reg(d.rd(), rs1 >> d.shamt()); break;
    case isa::kSRAI:
      s.set_reg(d.rd(), static_cast<uint32_t>(srs1 >> d.shamt()));
      break;

    case isa::kADD:  s.set_reg(d.rd(), rs1 + rs2); break;
    case isa::kSUB:  s.set_reg(d.rd(), rs1 - rs2); break;
    case isa::kSLL:  s.set_reg(d.rd(), rs1 << (rs2 & 31)); break;
    case isa::kSLT:  s.set_reg(d.rd(), srs1 < srs2 ? 1 : 0); break;
    case isa::kSLTU: s.set_reg(d.rd(), rs1 < rs2 ? 1 : 0); break;
    case isa::kXOR:  s.set_reg(d.rd(), rs1 ^ rs2); break;
    case isa::kSRL:  s.set_reg(d.rd(), rs1 >> (rs2 & 31)); break;
    case isa::kSRA:
      s.set_reg(d.rd(), static_cast<uint32_t>(srs1 >> (rs2 & 31)));
      break;
    case isa::kOR:   s.set_reg(d.rd(), rs1 | rs2); break;
    case isa::kAND:  s.set_reg(d.rd(), rs1 & rs2); break;

    case isa::kMUL: s.set_reg(d.rd(), rs1 * rs2); break;
    case isa::kMULH:
      s.set_reg(d.rd(), static_cast<uint32_t>(
                            (static_cast<int64_t>(srs1) *
                             static_cast<int64_t>(srs2)) >> 32));
      break;
    case isa::kMULHSU:
      s.set_reg(d.rd(), static_cast<uint32_t>(
                            (static_cast<int64_t>(srs1) *
                             static_cast<int64_t>(static_cast<uint64_t>(rs2))) >> 32));
      break;
    case isa::kMULHU:
      s.set_reg(d.rd(), static_cast<uint32_t>(
                            (static_cast<uint64_t>(rs1) *
                             static_cast<uint64_t>(rs2)) >> 32));
      break;
    case isa::kDIV:
      // RISC-V manual Table 7.1: /0 -> -1; overflow -> INT_MIN.
      if (rs2 == 0) {
        s.set_reg(d.rd(), 0xffffffffu);
      } else if (rs1 == 0x80000000u && rs2 == 0xffffffffu) {
        s.set_reg(d.rd(), 0x80000000u);
      } else {
        s.set_reg(d.rd(), static_cast<uint32_t>(srs1 / srs2));
      }
      break;
    case isa::kDIVU:
      s.set_reg(d.rd(), rs2 == 0 ? 0xffffffffu : rs1 / rs2);
      break;
    case isa::kREM:
      if (rs2 == 0) {
        s.set_reg(d.rd(), rs1);
      } else if (rs1 == 0x80000000u && rs2 == 0xffffffffu) {
        s.set_reg(d.rd(), 0);
      } else {
        s.set_reg(d.rd(), static_cast<uint32_t>(srs1 % srs2));
      }
      break;
    case isa::kREMU:
      s.set_reg(d.rd(), rs2 == 0 ? rs1 : rs1 % rs2);
      break;

    case isa::kFENCE:
      break;

    default:
      return false;  // system / CSR / custom: outside the oracle
  }
  s.pc = next_pc;
  return true;
}

}  // namespace binsym::oracle
