// Tests for the riscv-opcodes description parser (the paper's Fig. 3
// format) and runtime registration.
#include <gtest/gtest.h>

#include "isa/decoder.hpp"
#include "isa/opcode_desc.hpp"
#include "spec/registry.hpp"

namespace binsym::isa {
namespace {

TEST(OpcodeDesc, ParsesFig3Madd) {
  auto descs = parse_opcode_descs(spec::madd_opcode_description());
  ASSERT_TRUE(descs.has_value());
  ASSERT_EQ(descs->size(), 1u);
  const OpcodeDesc& madd = descs->front();
  EXPECT_EQ(madd.name, "madd");
  EXPECT_EQ(madd.mask, 0x600007fu);
  EXPECT_EQ(madd.match, 0x2000043u);
  EXPECT_EQ(madd.format, Format::kR4);
  EXPECT_EQ(madd.extension, "rv_zimadd");
}

TEST(OpcodeDesc, EncodingPatternDerivesMaskMatch) {
  auto descs = parse_opcode_descs(R"(
myinst:
  encoding: '-----01------------------1000011'
  variable_fields: [rd, rs1, rs2, rs3]
)");
  ASSERT_TRUE(descs.has_value());
  EXPECT_EQ(descs->front().mask, 0x600007fu);
  EXPECT_EQ(descs->front().match, 0x2000043u);
}

TEST(OpcodeDesc, InconsistentMaskRejected) {
  ParseError error;
  auto descs = parse_opcode_descs(R"(
bad:
  encoding: '-----01------------------1000011'
  mask: '0x12345'
  variable_fields: [rd, rs1, rs2, rs3]
)", &error);
  EXPECT_FALSE(descs.has_value());
  EXPECT_NE(error.message.find("mask"), std::string::npos);
}

TEST(OpcodeDesc, BadPatternRejected) {
  ParseError error;
  auto descs = parse_opcode_descs(R"(
bad:
  encoding: '1010'
  variable_fields: [rd, rs1, rs2]
)", &error);
  EXPECT_FALSE(descs.has_value());
  EXPECT_EQ(error.line, 3);
}

TEST(OpcodeDesc, MissingEncodingRejected) {
  ParseError error;
  auto descs = parse_opcode_descs(R"(
bad:
  variable_fields: [rd, rs1, rs2]
)", &error);
  EXPECT_FALSE(descs.has_value());
}

TEST(OpcodeDesc, MultipleEntriesAndComments) {
  auto descs = parse_opcode_descs(R"(
# two custom R-type instructions in the custom-0 space
first:
  encoding: '0000000----------000-----0001011'
  variable_fields: [rd, rs1, rs2]
second:
  encoding: '0000001----------000-----0001011'   # another funct7
  variable_fields: [rd, rs1, rs2]
  extension: [rv_xtest]
)");
  ASSERT_TRUE(descs.has_value());
  ASSERT_EQ(descs->size(), 2u);
  EXPECT_EQ((*descs)[0].name, "first");
  EXPECT_EQ((*descs)[1].name, "second");
  EXPECT_EQ((*descs)[1].extension, "rv_xtest");
}

TEST(OpcodeDesc, FormatMapping) {
  EXPECT_EQ(format_for_fields({"rd", "rs1", "rs2"}), Format::kR);
  EXPECT_EQ(format_for_fields({"rd", "rs1", "rs2", "rs3"}), Format::kR4);
  EXPECT_EQ(format_for_fields({"rd", "rs1", "imm12"}), Format::kI);
  EXPECT_EQ(format_for_fields({"rd", "rs1", "shamtw"}), Format::kIShift);
  EXPECT_EQ(format_for_fields({"rd", "imm20"}), Format::kU);
  EXPECT_EQ(format_for_fields({"rd", "jimm20"}), Format::kJ);
  EXPECT_EQ(format_for_fields({"rs1", "rs2", "bimm12hi", "bimm12lo"}),
            Format::kB);
  EXPECT_EQ(format_for_fields({"rs1", "rs2", "imm12hi", "imm12lo"}),
            Format::kS);
  EXPECT_EQ(format_for_fields({}), Format::kSystem);
  EXPECT_FALSE(format_for_fields({"rs3"}).has_value());
}

TEST(OpcodeDesc, RegisterIntoTableAndDecode) {
  OpcodeTable table;
  auto ids = register_opcode_descs(table, spec::madd_opcode_description());
  ASSERT_TRUE(ids.has_value());
  Decoder decoder(table);
  // madd t0, t1, t2, t3: match | rd=5<<7 | rs1=6<<15 | rs2=7<<20 | rs3=28<<27
  uint32_t word = 0x2000043 | (5u << 7) | (6u << 15) | (7u << 20) | (28u << 27);
  auto decoded = decoder.decode(word);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->info->name, "madd");
  EXPECT_EQ(decoded->rd(), 5u);
  EXPECT_EQ(decoded->rs3(), 28u);
}

TEST(OpcodeDesc, DoubleRegistrationFails) {
  OpcodeTable table;
  ASSERT_TRUE(register_opcode_descs(table, spec::madd_opcode_description()));
  ParseError error;
  EXPECT_FALSE(register_opcode_descs(table, spec::madd_opcode_description(),
                                     &error));
}

}  // namespace
}  // namespace binsym::isa
