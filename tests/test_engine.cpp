// DSE engine tests: exact path counts on programs with known path spaces,
// DFS exactly-once enumeration, assumption handling (address
// concretization), failure discovery and engine options.
#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"

namespace binsym {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() { spec::install_rv32im(registry, table); }

  core::Program load(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  core::EngineStats explore(const core::Program& program,
                            const core::DseEngine::PathCallback& cb = nullptr,
                            core::EngineOptions options = {}) {
    smt::Context ctx;
    core::BinSymExecutor executor(ctx, decoder, registry, program);
    core::DseEngine engine(executor, smt::make_z3_solver(ctx), options);
    return engine.explore(cb);
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

constexpr const char* kPrologue = R"(
_start:
    la a0, buf
    li a1, 4
    li a7, 2
    ecall
    la s0, buf
)";
constexpr const char* kEpilogue = R"(
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 4
)";

TEST_F(EngineTest, IndependentBitsGiveTwoToTheN) {
  // Four independent byte comparisons: exactly 2^4 paths.
  std::string source = std::string(kPrologue) + R"(
    li s1, 0
    lbu t0, 0(s0)
    sltiu t1, t0, 100
    add s1, s1, t1
    lbu t0, 1(s0)
    beqz t0, skip1
    addi s1, s1, 1
skip1:
    lbu t0, 2(s0)
    beqz t0, skip2
    addi s1, s1, 1
skip2:
    lbu t0, 3(s0)
    beqz t0, skip3
    addi s1, s1, 1
skip3:
)" + kEpilogue;
  // sltiu produces no branch; three branches + one comparison-free add:
  // wait — only the three beqz fork. The sltiu is data, not control.
  EXPECT_EQ(explore(load(source)).paths, 8u);
}

TEST_F(EngineTest, NestedBranchesCountFeasibleOnly) {
  // if (b0 < 10) { if (b0 > 20) unreachable; }  -> 3 feasible paths, one
  // infeasible flip.
  std::string source = std::string(kPrologue) + R"(
    lbu t0, 0(s0)
    li t1, 10
    bgeu t0, t1, big
    li t1, 20
    bltu t1, t0, unreachable
    j out
big:
    j out
unreachable:
    li a0, 3
    li a7, 3
    ecall
out:
)" + kEpilogue;
  core::EngineStats stats = explore(load(source));
  EXPECT_EQ(stats.paths, 2u);
  EXPECT_EQ(stats.infeasible_flips, 1u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST_F(EngineTest, PathsAreEnumeratedExactlyOnce) {
  std::string source = std::string(kPrologue) + R"(
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    bltu t0, t1, x
    nop
x:
    li t2, 7
    bltu t0, t2, y
    nop
y:
)" + kEpilogue;
  std::set<std::string> outputs;
  uint64_t count = 0;
  explore(load(source), [&](const core::PathResult& path) {
    ++count;
    // Identify the path by its branch-decision string.
    std::string key;
    for (const core::BranchRecord& b : path.trace.branches)
      key += b.taken ? '1' : '0';
    EXPECT_TRUE(outputs.insert(key).second) << "duplicate path " << key;
  });
  EXPECT_EQ(outputs.size(), count);
  EXPECT_EQ(count, 4u);
}

TEST_F(EngineTest, SeedsSatisfyTheirPathConditions) {
  std::string source = std::string(kPrologue) + R"(
    lbu t0, 0(s0)
    li t1, 0x42
    bne t0, t1, miss
    li a0, 5
    li a7, 3
    ecall
miss:
)" + kEpilogue;
  bool found = false;
  explore(load(source), [&](const core::PathResult& path) {
    if (!path.trace.failures.empty()) {
      found = true;
      EXPECT_EQ(path.trace.failures[0].id, 5u);
      // The discovered input must be the magic byte.
      EXPECT_EQ(path.seed.get(path.trace.input_vars[0]), 0x42u);
    }
  });
  EXPECT_TRUE(found) << "engine failed to discover the guarded failure";
}

TEST_F(EngineTest, SymbolicLoadAddressConcretized) {
  // Load from buf[b0 & 3]: the address depends on symbolic input, so the
  // machine pins it with an assumption; exploration still terminates and
  // branches on the loaded value work.
  std::string source = std::string(kPrologue) + R"(
    lbu t0, 0(s0)
    andi t0, t0, 3
    add t1, s0, t0
    lbu t2, 0(t1)            # symbolic address (concretized)
    beqz t2, z
    nop
z:
)" + kEpilogue;
  core::EngineStats stats = explore(load(source));
  EXPECT_GE(stats.paths, 2u);
  EXPECT_EQ(stats.divergences, 0u);
}

TEST_F(EngineTest, MaxPathsLimit) {
  std::string source = std::string(kPrologue) + R"(
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    bltu t0, t1, a
a:  lbu t2, 2(s0)
    beqz t2, b
b:
)" + kEpilogue;
  core::EngineOptions options;
  options.max_paths = 2;
  EXPECT_EQ(explore(load(source), nullptr, options).paths, 2u);
}

TEST_F(EngineTest, DivuForksOnSymbolicDivisor) {
  // The paper's Sect. III-B behaviour: DIVU with a symbolic divisor forks
  // into divisor==0 and divisor!=0 (the spec's explicit runIfElse).
  std::string source = std::string(kPrologue) + R"(
    lbu t0, 0(s0)
    li t1, 100
    divu t2, t1, t0
)" + kEpilogue;
  EXPECT_EQ(explore(load(source)).paths, 2u);
}

TEST_F(EngineTest, Fig2DivisionParadoxIsReachable) {
  // Fig. 2: z = x / y with x,y symbolic; "x < z" IS reachable (y == 0
  // makes z all-ones). A hand-written engine assuming division shrinks
  // would miss it.
  std::string source = R"(
_start:
    la a0, buf
    li a1, 8
    li a7, 2
    ecall
    la s0, buf
    lw a0, 0(s0)             # x
    lw a1, 4(s0)             # y
    divu a1, a0, a1          # z = x / y   (Fig. 2 step 2)
    bltu a0, a1, fail        # if (x < z) goto fail
    j out
fail:
    li a0, 9
    li a7, 3
    ecall
out:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 8
)";
  uint64_t failures = 0;
  explore(load(source), [&](const core::PathResult& path) {
    failures += path.trace.failures.size();
  });
  EXPECT_GE(failures, 1u) << "the division-by-zero branch must be reachable";
}

TEST_F(EngineTest, NoSymbolicInputSinglePath) {
  core::Program program = load(R"(
_start:
    li t0, 5
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
)");
  core::EngineStats stats = explore(program);
  EXPECT_EQ(stats.paths, 1u);
  EXPECT_EQ(stats.flip_attempts, 0u);  // concrete branches never reach Z3
}

TEST_F(EngineTest, ValidatedModelsOption) {
  std::string source = std::string(kPrologue) + R"(
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    bltu t0, t1, q
q:
)" + kEpilogue;
  core::EngineOptions options;
  options.validate_models = true;  // throws on a bad model
  EXPECT_EQ(explore(load(source), nullptr, options).paths, 2u);
}

}  // namespace
}  // namespace binsym
