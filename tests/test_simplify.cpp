// Dedicated pins for the simplifier's extra rewrite rules and the builder
// canonicalization they rely on (commutative constant operands on the
// right), plus a differential property check of every rule pattern against
// concrete evaluation and Z3.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "smt/context.hpp"
#include "smt/eval.hpp"
#include "smt/simplify.hpp"
#include "smt/solver.hpp"
#include "support/rng.hpp"

namespace binsym::smt {
namespace {

class SimplifyRules : public ::testing::Test {
 protected:
  Context ctx;
  ExprRef x = ctx.var("x", 8);

  ExprRef c(uint64_t v, unsigned w = 8) { return ctx.constant(v, w); }
};

// -- Builder canonicalization of commutative constant operands. ---------------

TEST_F(SimplifyRules, CommutativeBuildersPutConstantsOnTheRight) {
  EXPECT_EQ(ctx.add(c(3), x), ctx.add(x, c(3)));
  EXPECT_EQ(ctx.mul(c(3), x), ctx.mul(x, c(3)));
  EXPECT_EQ(ctx.and_(c(3), x), ctx.and_(x, c(3)));
  EXPECT_EQ(ctx.or_(c(3), x), ctx.or_(x, c(3)));
  EXPECT_EQ(ctx.xor_(c(3), x), ctx.xor_(x, c(3)));
  for (ExprRef e : {ctx.add(c(3), x), ctx.mul(c(3), x), ctx.and_(c(3), x),
                    ctx.or_(c(3), x), ctx.xor_(c(3), x)}) {
    ASSERT_EQ(e->num_ops, 2u);
    EXPECT_TRUE(e->ops[1]->is_const()) << kind_name(e->kind);
  }
}

TEST_F(SimplifyRules, EqCanonicalizesConstantsAtEveryWidth) {
  // Width 8 (not just the boolean width-1 reduction): c == x interns as
  // x == c, so the constant-chain rules need only one orientation.
  ExprRef ab = ctx.eq(c(7), x);
  EXPECT_EQ(ab, ctx.eq(x, c(7)));
  ASSERT_EQ(ab->kind, Kind::kEq);
  EXPECT_TRUE(ab->ops[1]->is_const());

  ExprRef w32 = ctx.var("w", 32);
  EXPECT_EQ(ctx.eq(ctx.constant(9, 32), w32), ctx.eq(w32, ctx.constant(9, 32)));
}

// -- The extra rewrite rules, pinned one by one. ------------------------------

TEST_F(SimplifyRules, AddConstantEqualsConstant) {
  // (x + 3) == 10  -->  x == 7
  ExprRef root = ctx.eq(ctx.add(x, c(3)), c(10));
  EXPECT_EQ(simplify(ctx, root), ctx.eq(x, c(7)));
}

TEST_F(SimplifyRules, SubFromConstantEqualsConstant) {
  // (3 - x) == 10  -->  x == (3 - 10) == 0xf9 (mod 256)
  ExprRef root = ctx.eq(ctx.sub(c(3), x), c(10));
  EXPECT_EQ(simplify(ctx, root), ctx.eq(x, c(0xf9)));
}

TEST_F(SimplifyRules, SubConstantFoldsThroughTheAddRule) {
  // The builders canonicalize (x - 3) to (x + 0xfd), so the equality is
  // picked up by the add rule: (x - 3) == 10  -->  x == 13.
  ExprRef sub = ctx.sub(x, c(3));
  EXPECT_EQ(sub->kind, Kind::kAdd);  // builder canonicalization, explicit
  ExprRef root = ctx.eq(sub, c(10));
  EXPECT_EQ(simplify(ctx, root), ctx.eq(x, c(13)));
}

TEST_F(SimplifyRules, XorConstantEqualsConstant) {
  // (x ^ 0x0f) == 0xf0  -->  x == 0xff
  ExprRef root = ctx.eq(ctx.xor_(x, c(0x0f)), c(0xf0));
  EXPECT_EQ(simplify(ctx, root), ctx.eq(x, c(0xff)));
}

TEST_F(SimplifyRules, UltOneBecomesEqualsZero) {
  ExprRef root = ctx.ult(ctx.add(x, c(1)), c(1));
  // ult(y, 1) --> y == 0, then the add rule: x == 0xff.
  EXPECT_EQ(simplify(ctx, root), ctx.eq(x, c(0xff)));
}

TEST_F(SimplifyRules, RulesComposeDownChains) {
  // ((x + 2) ^ 5) == 9  -->  (x + 2) == 12  -->  x == 10
  ExprRef root = ctx.eq(ctx.xor_(ctx.add(x, c(2)), c(5)), c(9));
  EXPECT_EQ(simplify(ctx, root), ctx.eq(x, c(10)));
}

// -- Differential property: every rule pattern preserves semantics. -----------

// -- The arena-id-keyed memo overload. ----------------------------------------

TEST_F(SimplifyRules, SharedMemoMatchesFreshSimplificationAcrossRoots) {
  // The memo keys on the dense arena node id (source -> simplified). A memo
  // shared across overlapping roots must return exactly what a fresh
  // per-root simplification returns — in both intern modes, where the
  // legacy allocator gives structural clones separate ids (and therefore
  // separate, equally correct, memo entries).
  for (bool intern : {true, false}) {
    Context c2(intern);
    ExprRef v = c2.var("v", 8);
    ExprRef shared = c2.eq(c2.add(v, c2.constant(3, 8)), c2.constant(10, 8));
    std::vector<ExprRef> roots = {
        shared,
        c2.and_(shared, c2.ult(v, c2.constant(20, 8))),
        c2.or_(shared, c2.eq(c2.xor_(v, c2.constant(0x0f, 8)),
                             c2.constant(0xf0, 8))),
        // A structural clone of `shared`: same node when interning, a
        // distinct id (separate memo entry) with the legacy allocator.
        c2.eq(c2.add(v, c2.constant(3, 8)), c2.constant(10, 8)),
    };
    std::unordered_map<uint32_t, ExprRef> memo;
    for (size_t i = 0; i < roots.size(); ++i) {
      ExprRef with_memo = simplify(c2, roots[i], memo);
      ExprRef fresh = simplify(c2, roots[i]);
      if (intern) {
        // Interning collapses the rebuilt result onto the memoized node.
        EXPECT_EQ(with_memo, fresh) << "intern root " << i;
      } else {
        // The legacy allocator returns a fresh clone per simplify call;
        // the memo must still agree structurally.
        EXPECT_TRUE(structurally_equal(with_memo, fresh))
            << "legacy root " << i;
      }
      // And repeated queries through the warm memo are stable.
      EXPECT_EQ(simplify(c2, roots[i], memo), with_memo)
          << (intern ? "intern" : "legacy") << " root " << i;
    }
    if (intern) {
      EXPECT_EQ(roots[0], roots[3]);  // the clone collapsed
    }
  }
}

TEST_F(SimplifyRules, LegacyContextSimplifyPreservesEvaluation) {
  // The simplifier rebuilds through the builders; with the legacy
  // allocator those return fresh nodes, and the result must still mean
  // the same thing.
  Context legacy(/*intern_exprs=*/false);
  ExprRef v = legacy.var("v", 8);
  ExprRef root = legacy.eq(legacy.xor_(legacy.add(v, legacy.constant(2, 8)),
                                       legacy.constant(5, 8)),
                           legacy.constant(9, 8));
  ExprRef simplified = simplify(legacy, root);
  Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    Assignment a;
    a.set(v->var_id, rng.next() & 0xff);
    EXPECT_EQ(evaluate(root, a), evaluate(simplified, a));
  }
}

TEST_F(SimplifyRules, RulePatternsAgreeWithEvaluatorAndZ3) {
  Rng rng(2025);
  auto solver = make_z3_solver(ctx);
  for (int round = 0; round < 64; ++round) {
    uint64_t c1 = rng.next() & 0xff, c2 = rng.next() & 0xff;
    std::vector<ExprRef> roots = {
        ctx.eq(ctx.add(x, c(c1)), c(c2)),
        ctx.eq(ctx.sub(c(c1), x), c(c2)),
        ctx.eq(ctx.sub(x, c(c1)), c(c2)),
        ctx.eq(ctx.xor_(x, c(c1)), c(c2)),
        ctx.ult(ctx.add(x, c(c1)), c(1)),
    };
    for (ExprRef root : roots) {
      ExprRef simplified = simplify(ctx, root);
      // Concrete agreement on a sweep of inputs.
      for (int i = 0; i < 8; ++i) {
        Assignment a;
        a.set(x->var_id, rng.next() & 0xff);
        EXPECT_EQ(evaluate(root, a), evaluate(simplified, a))
            << "c1=" << c1 << " c2=" << c2;
      }
      // Solver agreement: root != simplified must be unsat.
      std::vector<ExprRef> query = {ctx.ne(root, simplified)};
      EXPECT_EQ(solver->check(query, nullptr), CheckResult::kUnsat)
          << "c1=" << c1 << " c2=" << c2;
    }
  }
}

}  // namespace
}  // namespace binsym::smt
