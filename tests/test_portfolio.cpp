// Solver portfolio, SMT-LIB pipe backend and persistent query/model store.
//
// Three layers of pinning:
//   * race mechanics with scripted StubSolver members — the first definitive
//     verdict wins, losers are cancelled (and a loser can never win), crashes
//     and all-unknown races degrade gracefully, and the feature router only
//     skips the race once a bucket has a measured leader;
//   * a cross-backend differential harness: randomized queries and the
//     SMT-LIB dumps of a Table I workload run through {z3, bitblast,
//     pipe(smtcheck), portfolio} and must agree on every verdict, with every
//     sat model validated by concrete evaluation;
//   * the persistent store: byte-exact round trips, corruption / truncation /
//     version-skew all degrade to a diagnosed cold start, kUnknown is never
//     admitted (unit and end-to-end via fault injection), and warm reruns
//     answer from the store without drifting the explored path set.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "core/finding.hpp"
#include "core/search.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "oracles/manager.hpp"
#include "smt/cache.hpp"
#include "smt/context.hpp"
#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "smt/pipe.hpp"
#include "smt/portfolio.hpp"
#include "smt/smtlib.hpp"
#include "smt/solver.hpp"
#include "smt/store.hpp"
#include "solver_test_util.hpp"
#include "spec/registry.hpp"
#include "support/bits.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace binsym::smt {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "binsym-portfolio-" + tag + "-" +
                    std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// -- Race mechanics with scripted members. -----------------------------------

/// No cheap-query shortcut: every check in these tests races.
PortfolioConfig racing_config() {
  PortfolioConfig config;
  config.cheap_node_threshold = 0;
  return config;
}

TEST(PortfolioRace, FirstDefinitiveVerdictWinsAndLosersAreCancelled) {
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  auto fast = std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(5), "fast-sat");
  auto slow = std::make_unique<StubSolver>(
      StubSolver::Mode::kUnsat, std::chrono::milliseconds(3000), "slow-unsat");
  StubSolver* slow_raw = slow.get();
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::move(fast));
  members.push_back(std::move(slow));
  auto portfolio = make_portfolio_solver(std::move(members), racing_config());

  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The loser's scripted 3 s solve must not gate the race: cancellation (or
  // the decided-before-wake skip) cut it short.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
  EXPECT_TRUE(slow_raw->cancelled_checks() >= 1 ||
              slow_raw->stats().queries == 0);

  const SolverStats& s = portfolio->stats();
  EXPECT_EQ(s.queries, 1u);
  EXPECT_EQ(s.sat, 1u);
  EXPECT_EQ(s.portfolio_races, 1u);
  EXPECT_EQ(s.portfolio_routed, 0u);
  EXPECT_EQ(s.portfolio_cancelled, 1u);
  ASSERT_EQ(s.portfolio_wins.count("fast-sat"), 1u);
  EXPECT_EQ(s.portfolio_wins.at("fast-sat"), 1u);
  EXPECT_EQ(s.portfolio_wins.count("slow-unsat"), 0u);
  EXPECT_EQ(portfolio->last_backend(), "fast-sat");
}

TEST(PortfolioRace, UnsatCanWinTheRaceToo) {
  // The mirror image: a fast unsat beats a slow sat — "definitive" means
  // either polarity, and the slow member's would-be sat never surfaces.
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::make_unique<StubSolver>(
      StubSolver::Mode::kUnsat, std::chrono::milliseconds(0), "fast-unsat"));
  members.push_back(std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(3000), "slow-sat"));
  auto portfolio = make_portfolio_solver(std::move(members), racing_config());

  Assignment model;
  EXPECT_EQ(portfolio->check(query, &model), CheckResult::kUnsat);
  EXPECT_TRUE(model.values.empty());  // no model for an unsat verdict
  EXPECT_EQ(portfolio->stats().portfolio_wins.at("fast-unsat"), 1u);
  EXPECT_EQ(portfolio->last_backend(), "fast-unsat");
}

TEST(PortfolioRace, WinnersModelIsHandedOut) {
  Context ctx;
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query{ctx.eq(x, ctx.constant(7, 8))};
  auto fast = std::make_unique<StubSolver>(StubSolver::Mode::kSat);
  fast->set_model_value(7);
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::move(fast));
  members.push_back(std::make_unique<StubSolver>(
      StubSolver::Mode::kUnknown, std::chrono::milliseconds(50), "laggard"));
  auto portfolio = make_portfolio_solver(std::move(members), racing_config());

  Assignment model;
  ASSERT_EQ(portfolio->check(query, &model), CheckResult::kSat);
  EXPECT_EQ(model.get(x->var_id), 7u);
  EXPECT_EQ(evaluate(query[0], model), 1u);
}

TEST(PortfolioRace, AllMembersUnknownMeansUnknown) {
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::make_unique<StubSolver>(StubSolver::Mode::kUnknown));
  members.push_back(std::make_unique<StubSolver>(StubSolver::Mode::kUnknown));
  auto portfolio = make_portfolio_solver(std::move(members), racing_config());

  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kUnknown);
  const SolverStats& s = portfolio->stats();
  EXPECT_EQ(s.unknown, 1u);
  EXPECT_EQ(s.portfolio_races, 1u);
  EXPECT_TRUE(s.portfolio_wins.empty());
  // Nobody won, so nobody was cancelled *by a winner*.
  EXPECT_EQ(s.portfolio_cancelled, 0u);
}

TEST(PortfolioRace, CrashingMemberJustLoses) {
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(
      std::make_unique<StubSolver>(StubSolver::Mode::kThrow,
                                   std::chrono::milliseconds(0), "crasher"));
  members.push_back(std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(10), "solid"));
  auto portfolio = make_portfolio_solver(std::move(members), racing_config());

  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  EXPECT_EQ(portfolio->stats().portfolio_wins.at("solid"), 1u);
  // ... and the portfolio survives to answer the next query.
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
}

TEST(PortfolioRace, SingleCrashingMemberDegradesToUnknown) {
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::make_unique<StubSolver>(StubSolver::Mode::kThrow));
  auto portfolio = make_portfolio_solver(std::move(members));

  // Routed first (single member), crash caught, race fallback also crashes:
  // the verdict weakens to kUnknown, the portfolio never throws.
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kUnknown);
  EXPECT_EQ(portfolio->stats().portfolio_routed, 1u);
  EXPECT_EQ(portfolio->stats().portfolio_races, 1u);
}

TEST(PortfolioRace, CancelledPortfolioSkipsTheRaceEntirely) {
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::make_unique<StubSolver>(StubSolver::Mode::kSat));
  members.push_back(std::make_unique<StubSolver>(StubSolver::Mode::kSat));
  auto portfolio = make_portfolio_solver(std::move(members), racing_config());

  portfolio->cancel();
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kUnknown);
  EXPECT_EQ(portfolio->stats().portfolio_races, 0u);
  EXPECT_EQ(portfolio->stats().portfolio_routed, 0u);
  // Sticky until re-armed, like every Solver.
  portfolio->reset_cancel();
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
}

TEST(PortfolioRace, SingleMemberPassesThroughWithoutARace) {
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(0), "lonely"));
  auto portfolio = make_portfolio_solver(std::move(members));

  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  EXPECT_EQ(portfolio->stats().portfolio_races, 0u);
  EXPECT_EQ(portfolio->stats().portfolio_routed, 1u);
  EXPECT_EQ(portfolio->last_backend(), "lonely");
  EXPECT_EQ(portfolio->name(), "portfolio[lonely]");
}

// -- Feature router. ----------------------------------------------------------

TEST(PortfolioRouter, CheapQueriesGoToTheFirstMemberWithoutRacing) {
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};  // one node, under threshold
  auto first = std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(0), "first");
  auto second = std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(0), "second");
  StubSolver* second_raw = second.get();
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::move(first));
  members.push_back(std::move(second));
  auto portfolio = make_portfolio_solver(std::move(members));  // defaults

  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  EXPECT_EQ(portfolio->stats().portfolio_routed, 1u);
  EXPECT_EQ(portfolio->stats().portfolio_races, 0u);
  EXPECT_EQ(second_raw->stats().queries, 0u);  // never woken
  EXPECT_EQ(portfolio->last_backend(), "first");
}

TEST(PortfolioRouter, RoutesToTheMeasuredLeaderAfterEnoughRaces) {
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  PortfolioConfig config = racing_config();
  config.route_min_races = 2;  // default win share 3/4 still applies
  auto sprinter = std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(0), "sprinter");
  auto strider = std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(60), "strider");
  StubSolver* sprinter_raw = sprinter.get();
  StubSolver* strider_raw = strider.get();
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::move(sprinter));
  members.push_back(std::move(strider));
  auto portfolio = make_portfolio_solver(std::move(members), config);

  // Two measured races, both won by the sprinter, make it the bucket leader.
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  EXPECT_EQ(portfolio->stats().portfolio_races, 2u);
  EXPECT_EQ(portfolio->stats().portfolio_wins.at("sprinter"), 2u);

  const uint64_t sprinter_before = sprinter_raw->stats().queries;
  const uint64_t strider_before = strider_raw->stats().queries;
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  EXPECT_EQ(portfolio->stats().portfolio_routed, 1u);
  EXPECT_EQ(portfolio->stats().portfolio_races, 2u);  // no new race
  EXPECT_EQ(sprinter_raw->stats().queries, sprinter_before + 1);
  EXPECT_EQ(strider_raw->stats().queries, strider_before);  // left alone
}

TEST(PortfolioRouter, RoutedUnknownFallsBackToTheFullRace) {
  // Routing may cost one redundant check, never an answer: the default
  // config sends this tiny query to the first member, which gives up, and
  // the fallback race still gets the second member's verdict.
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::make_unique<StubSolver>(
      StubSolver::Mode::kUnknown, std::chrono::milliseconds(0), "flaky"));
  members.push_back(std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(0), "closer"));
  auto portfolio = make_portfolio_solver(std::move(members));

  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  EXPECT_EQ(portfolio->stats().portfolio_routed, 1u);
  EXPECT_EQ(portfolio->stats().portfolio_races, 1u);
  EXPECT_EQ(portfolio->stats().portfolio_wins.at("closer"), 1u);
  EXPECT_EQ(portfolio->last_backend(), "closer");
}

TEST(PortfolioRace, FallbackRaceRunsOnTheRemainingDeadlineBudget) {
  // Regression: a routed member that burns part of the per-query deadline
  // and gives up must not re-arm the fallback race with the full deadline
  // again — one logical check may spend at most one configured budget.
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};  // tiny: routed to member 0
  auto burner = std::make_unique<StubSolver>(
      StubSolver::Mode::kUnknown, std::chrono::milliseconds(80), "burner");
  auto closer = std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(0), "closer");
  StubSolver* closer_raw = closer.get();
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::move(burner));
  members.push_back(std::move(closer));
  auto portfolio = make_portfolio_solver(std::move(members));  // defaults

  portfolio->set_deadline_ms(10'000);
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kSat);
  EXPECT_EQ(portfolio->stats().portfolio_routed, 1u);
  EXPECT_EQ(portfolio->stats().portfolio_races, 1u);
  // The race members were armed with deadline − elapsed, not the full 10 s
  // (the routed burner provably spent ≥ 80 ms of the budget first).
  EXPECT_GT(closer_raw->deadline_ms(), 0u);
  EXPECT_LE(closer_raw->deadline_ms(), 10'000u - 80u);
}

TEST(PortfolioRace, ExhaustedDeadlineSkipsTheFallbackRace) {
  // The degenerate case of the budget contract: when the routed attempt
  // consumed the whole deadline there is nothing left to race on — the
  // check answers kUnknown immediately instead of doubling the budget.
  Context ctx;
  std::vector<ExprRef> query{ctx.var("x", 1)};
  auto burner = std::make_unique<StubSolver>(
      StubSolver::Mode::kUnknown, std::chrono::milliseconds(120), "burner");
  auto closer = std::make_unique<StubSolver>(
      StubSolver::Mode::kSat, std::chrono::milliseconds(0), "closer");
  StubSolver* closer_raw = closer.get();
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(std::move(burner));
  members.push_back(std::move(closer));
  auto portfolio = make_portfolio_solver(std::move(members));  // defaults

  portfolio->set_deadline_ms(50);  // the burner (stub: no deadline honor)
                                   // overshoots it by construction
  EXPECT_EQ(portfolio->check(query, nullptr), CheckResult::kUnknown);
  EXPECT_EQ(portfolio->stats().portfolio_routed, 1u);
  EXPECT_EQ(portfolio->stats().portfolio_races, 0u);
  EXPECT_EQ(closer_raw->stats().queries, 0u);  // never woken
}

// -- Cross-backend differential harness. --------------------------------------

/// Directory of the running test binary (the build tree), where the in-tree
/// `smtcheck` SMT-LIB CLI lives.
std::string build_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::string path(buf);
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string smtcheck_command() {
  const std::string candidate = build_dir() + "/smtcheck";
  return fs::exists(candidate) ? candidate : std::string();
}

/// The full backend matrix over one context: both in-tree backends, the pipe
/// driving the in-tree SMT-LIB CLI (when built), and a portfolio racing the
/// in-tree pair. Every member of the matrix must agree on every verdict.
std::vector<std::pair<std::string, std::unique_ptr<Solver>>> backend_matrix(
    Context& ctx) {
  std::vector<std::pair<std::string, std::unique_ptr<Solver>>> matrix;
  matrix.emplace_back("z3", make_z3_solver(ctx));
  matrix.emplace_back("bitblast", make_bitblast_solver(ctx));
  const std::string pipe_cmd = smtcheck_command();
  if (!pipe_cmd.empty())
    matrix.emplace_back("pipe", make_pipe_solver(ctx, pipe_cmd));
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(make_z3_solver(ctx));
  members.push_back(make_bitblast_solver(ctx));
  matrix.emplace_back("portfolio", make_portfolio_solver(std::move(members)));
  return matrix;
}

/// Check `assertions` on every backend; all verdicts must match and every
/// sat model must satisfy every assertion under concrete evaluation.
CheckResult check_all_backends_agree(
    const std::vector<ExprRef>& assertions,
    std::vector<std::pair<std::string, std::unique_ptr<Solver>>>& matrix,
    const std::string& what) {
  CheckResult reference = CheckResult::kUnknown;
  for (auto& [name, solver] : matrix) {
    Assignment model;
    const CheckResult result = solver->check(assertions, &model);
    EXPECT_NE(result, CheckResult::kUnknown) << name << " on " << what;
    if (reference == CheckResult::kUnknown) reference = result;
    EXPECT_EQ(result, reference) << name << " diverges on " << what;
    if (result == CheckResult::kSat) {
      for (size_t i = 0; i < assertions.size(); ++i) {
        EXPECT_EQ(evaluate(assertions[i], model), 1u)
            << name << " returned a bogus model for assertion " << i << " of "
            << what;
      }
    }
  }
  return reference;
}

/// Compact random query builder (a trimmed DagGen): a pool of 8/16/32-bit
/// terms grown with the arithmetic, bitwise and heavy (mul/div) operators,
/// ending in a width-1 root.
class QueryGen {
 public:
  QueryGen(Context& ctx, Rng& rng) : ctx_(ctx), rng_(rng) {
    for (unsigned i = 0; i < 3; ++i)
      pool_.push_back(ctx_.var("q" + std::to_string(i), 8));
    pool_.push_back(ctx_.constant(rng_.next() & 0xff, 8));
  }

  ExprRef term(unsigned steps) {
    for (unsigned i = 0; i < steps; ++i) {
      ExprRef a = pick(), b = pick();
      switch (rng_.below(8)) {
        case 0: pool_.push_back(ctx_.add(a, b)); break;
        case 1: pool_.push_back(ctx_.sub(a, b)); break;
        case 2: pool_.push_back(ctx_.mul(a, b)); break;
        case 3: pool_.push_back(ctx_.udiv(a, b)); break;
        case 4: pool_.push_back(ctx_.xor_(a, b)); break;
        case 5: pool_.push_back(ctx_.and_(a, b)); break;
        case 6: pool_.push_back(ctx_.shl(a, b)); break;
        default: pool_.push_back(ctx_.or_(a, b)); break;
      }
    }
    return pool_.back();
  }

  Context& ctx() { return ctx_; }

 private:
  ExprRef pick() { return pool_[rng_.below(pool_.size())]; }

  Context& ctx_;
  Rng& rng_;
  std::vector<ExprRef> pool_;
};

class BackendDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendDifferential, RandomizedQueriesAgreeAcrossAllBackends) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);
  Context ctx;
  QueryGen gen(ctx, rng);
  auto matrix = backend_matrix(ctx);

  ExprRef root = gen.term(24);
  Assignment witness;
  for (uint32_t id = 0; id < ctx.num_vars(); ++id)
    witness.set(id, rng.next() & mask_bits(ctx.var_info(id).width));
  const uint64_t value = evaluate(root, witness);

  // Pin every variable and assert root == value: sat by construction, and
  // the unique model is the witness itself.
  std::vector<ExprRef> pinned;
  for (uint32_t id = 0; id < ctx.num_vars(); ++id) {
    const VarInfo& info = ctx.var_info(id);
    pinned.push_back(ctx.eq(ctx.var(info.name, info.width),
                            ctx.constant(witness.get(id), info.width)));
  }
  pinned.push_back(ctx.eq(root, ctx.constant(value, root->width)));
  EXPECT_EQ(check_all_backends_agree(pinned, matrix, "pinned-sat"),
            CheckResult::kSat);

  // The same pinning with root == value+1 (a different value mod 2^w).
  pinned.back() =
      ctx.eq(root, ctx.constant(value + 1, root->width));
  EXPECT_EQ(check_all_backends_agree(pinned, matrix, "pinned-unsat"),
            CheckResult::kUnsat);

  // Unpinned: root == value is reachable (the witness proves it), but the
  // backends have to find their own — possibly different — models, which the
  // harness then validates by evaluation.
  std::vector<ExprRef> open{ctx.eq(root, ctx.constant(value, root->width))};
  EXPECT_EQ(check_all_backends_agree(open, matrix, "open-sat"),
            CheckResult::kSat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendDifferential,
                         ::testing::Range<uint64_t>(1, 9));

// -- Pipe backend failure modes. ----------------------------------------------

/// A query whose SMT-LIB text comfortably exceeds the 64 KiB pipe buffer,
/// so the writer still has bytes in flight whenever the child dies early.
std::vector<ExprRef> oversized_query(Context& ctx, const std::string& tag) {
  std::vector<ExprRef> query;
  for (int i = 0; i < 4000; ++i) {
    ExprRef v = ctx.var(tag + std::to_string(i), 32);
    query.push_back(ctx.eq(v, ctx.constant(static_cast<uint64_t>(i), 32)));
  }
  return query;
}

TEST(PipeSolver, ChildDyingBeforeDrainingStdinIsInertNotFatal) {
  // Regression: a child that exits without reading its stdin — a crashed
  // solver, or execvp's _exit(127) for a missing binary — widows the write
  // pipe mid-query. The write must surface as EPIPE and degrade the check
  // to kUnknown, not raise SIGPIPE and kill the whole engine process.
  Context ctx;
  const std::vector<ExprRef> query = oversized_query(ctx, "widow");
  auto exits = make_pipe_solver(ctx, "true");  // exits, never reads stdin
  Assignment model;
  EXPECT_EQ(exits->check(query, &model), CheckResult::kUnknown);
  EXPECT_EQ(exits->stats().unknown, 1u);

  auto missing =
      make_pipe_solver(ctx, "binsym-definitely-not-a-solver-binary");
  EXPECT_EQ(missing->check(query, &model), CheckResult::kUnknown);
  // ... and both stay usable for the next check (inert, not fatal).
  EXPECT_EQ(exits->check(query, nullptr), CheckResult::kUnknown);
}

/// Write an executable shell script that ignores its stdin and prints the
/// given response; returns the script path (usable as a pipe command).
std::string scripted_solver(const std::string& dir,
                            const std::string& response) {
  const std::string path = dir + "/fake-solver.sh";
  {
    std::ofstream out(path);
    out << "#!/bin/sh\ncat >/dev/null\nprintf '%s\\n' '" << response << "'\n";
  }
  fs::permissions(path, fs::perms::owner_all);
  return path;
}

TEST(PipeSolver, DuplicateModelBindingCannotMaskAMissingVariable) {
  // Regression: a solver that binds x twice while omitting y must degrade
  // to kUnknown — counting (name value) pairs would accept the incomplete
  // model, and y would silently read as zero downstream.
  const std::string dir = fresh_dir("dup-binding");
  Context ctx;
  ExprRef x = ctx.var("x", 8);
  ExprRef y = ctx.var("y", 8);
  const std::vector<ExprRef> query{ctx.eq(x, ctx.constant(1, 8)),
                                   ctx.eq(y, ctx.constant(2, 8))};

  auto duplicated = make_pipe_solver(
      ctx, scripted_solver(dir, "sat\n((x (_ bv1 8)) (x (_ bv2 8)))"));
  Assignment model;
  EXPECT_EQ(duplicated->check(query, &model), CheckResult::kUnknown);

  // Control: the same script shape with both variables bound is a real
  // model and sails through.
  auto complete = make_pipe_solver(
      ctx, scripted_solver(dir, "sat\n((x (_ bv1 8)) (y (_ bv2 8)))"));
  Assignment good;
  ASSERT_EQ(complete->check(query, &good), CheckResult::kSat);
  EXPECT_EQ(good.get(x->var_id), 1u);
  EXPECT_EQ(good.get(y->var_id), 2u);
}

}  // namespace
}  // namespace binsym::smt

// -- Engine-level harness: Table I corpus, store end-to-end, identity sweep. --

namespace binsym {
namespace {

namespace fs = std::filesystem;

/// How each exploration builds its per-worker solver stack.
enum class SolverSetup { kPlain, kPortfolio };

class PortfolioEngineTest : public ::testing::Test {
 protected:
  PortfolioEngineTest() {
    spec::install_rv32im(registry, table);
    spec::install_custom_madd(table, registry);
    spec::install_zbb(table, registry);
  }

  core::Program load_asm(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  core::WorkerFactory factory(const core::Program& program, SolverSetup setup,
                              const std::string& oracles_spec = "") {
    return [this, &program, setup, oracles_spec](unsigned) {
      core::WorkerResources r;
      r.ctx = std::make_unique<smt::Context>();
      r.executor = std::make_unique<core::BinSymExecutor>(
          *r.ctx, decoder, registry, program, core::MachineConfig{});
      if (setup == SolverSetup::kPortfolio) {
        std::vector<std::unique_ptr<smt::Solver>> members;
        members.push_back(smt::make_z3_solver(*r.ctx));
        members.push_back(smt::make_bitblast_solver(*r.ctx));
        r.solver = smt::make_portfolio_solver(std::move(members));
      } else {
        r.solver = smt::make_z3_solver(*r.ctx);
      }
      if (!oracles_spec.empty()) {
        std::string error;
        auto manager = oracles::OracleManager::make(
            *r.ctx,
            oracles::MemoryMap::for_program(program,
                                            core::MachineConfig{}.stack_top),
            oracles_spec, &error);
        EXPECT_TRUE(manager) << error;
        r.executor->set_observer(manager.get());
        struct Keep {
          std::unique_ptr<oracles::OracleManager> manager;
        };
        auto keep = std::make_shared<Keep>();
        keep->manager = std::move(manager);
        r.keepalive = std::move(keep);
      }
      return r;
    };
  }

  struct Exploration {
    core::EngineStats stats;
    std::set<std::string> path_keys;
    std::multiset<uint32_t> failures;
  };

  Exploration explore(const core::Program& program, SolverSetup setup,
                      core::EngineOptions options) {
    core::DseEngine dse(factory(program, setup), options);
    Exploration result;
    result.stats = dse.explore([&](const core::PathResult& path) {
      std::string key;
      key.reserve(path.trace.branches.size());
      for (const core::BranchRecord& b : path.trace.branches)
        key += b.taken ? '1' : '0';
      result.path_keys.insert(key);
      for (const core::Failure& f : path.trace.failures)
        result.failures.insert(f.id);
    });
    return result;
  }

  /// Solver checks that actually reached a backend: logical queries minus
  /// the ones the cache and the persistent store answered.
  static uint64_t backend_calls(const core::EngineStats& stats) {
    return stats.solver.queries - stats.solver.cache_hits - stats.store_hits;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

constexpr const char* kThreeBranchGuest = R"(
_start:
    la a0, buf
    li a1, 3
    li a7, 2
    ecall
    la s0, buf
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    lbu t2, 2(s0)
    bnez t0, skip1
    nop
skip1:
    bltu t1, t2, skip2
    nop
skip2:
    beqz t2, skip3
    nop
skip3:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 3
)";

TEST_F(PortfolioEngineTest, TableICorpusAgreesAcrossAllBackends) {
  // Dump the real flip queries of a Table I workload prefix as SMT-LIB
  // files, then replay every one through the full backend matrix: one
  // verdict per query, every sat model valid. This is the corpus leg of the
  // differential harness — the randomized leg lives above.
  const std::string dump_dir = smt::fresh_dir("corpus");
  core::Program program = workloads::load_workload(table, "base64-encode");
  core::EngineOptions options;
  options.max_paths = 40;
  options.smtlib_dump_dir = dump_dir;
  Exploration run = explore(program, SolverSetup::kPlain, options);
  EXPECT_GT(run.stats.paths, 0u);

  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dump_dir))
    if (entry.path().extension() == ".smt2") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 4u);
  if (files.size() > 60) files.resize(60);  // bound the replay cost

  uint64_t sat = 0, unsat = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    std::ostringstream text;
    text << in.rdbuf();
    smt::Context ctx;
    std::vector<smt::ExprRef> assertions;
    std::string error;
    ASSERT_TRUE(smt::parse_query(ctx, text.str(), &assertions, &error))
        << file << ": " << error;
    auto matrix = smt::backend_matrix(ctx);
    switch (smt::check_all_backends_agree(assertions, matrix, file)) {
      case smt::CheckResult::kSat: ++sat; break;
      case smt::CheckResult::kUnsat: ++unsat; break;
      case smt::CheckResult::kUnknown: break;
    }
  }
  // The corpus must exercise both polarities, or the agreement is vacuous.
  EXPECT_GT(sat, 0u);
  EXPECT_GT(unsat, 0u);
}

TEST_F(PortfolioEngineTest, WarmStoreAnswersWithoutBackendCallsOrPathDrift) {
  const std::string store_dir = smt::fresh_dir("warm");
  core::Program program = load_asm(kThreeBranchGuest);

  core::EngineOptions options;
  options.solver_store = smt::SolverStore::open(store_dir);
  EXPECT_TRUE(options.solver_store->load_error().empty());
  Exploration cold = explore(program, SolverSetup::kPlain, options);
  EXPECT_GT(cold.stats.store_misses, 0u);
  EXPECT_EQ(cold.stats.store_hits, 0u);
  EXPECT_GT(cold.stats.store_entries, 0u);
  EXPECT_GT(backend_calls(cold.stats), 0u);

  // A fresh process would reopen the flushed file exactly like this.
  options.solver_store = smt::SolverStore::open(store_dir);
  EXPECT_TRUE(options.solver_store->load_error().empty());
  Exploration warm = explore(program, SolverSetup::kPlain, options);
  EXPECT_EQ(warm.path_keys, cold.path_keys);
  EXPECT_EQ(warm.failures, cold.failures);
  EXPECT_EQ(warm.stats.paths, cold.stats.paths);
  EXPECT_EQ(warm.stats.solver.queries, cold.stats.solver.queries);
  EXPECT_GT(warm.stats.store_hits, 0u);
  // The acceptance bar is >= 5x fewer backend calls; this tiny guest
  // actually needs none at all on the warm run.
  EXPECT_LE(5 * backend_calls(warm.stats), backend_calls(cold.stats));
}

/// Mirror of the store.bin v2 layout, just deep enough to find every model
/// value, overwrite it with `value`, and re-seal the trailing FNV-1a
/// checksum — simulating a content-hash collision: right key, wrong model.
/// Zero is the reliably-wrong replacement here: every sat flip query mined
/// off the all-zero seed path negates a branch that path took, so the
/// all-zero assignment violates it by construction.
std::string clobber_store_models(std::string bytes, uint64_t value) {
  auto u32_at = [&](size_t pos) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    return v;
  };
  auto u64_at = [&](size_t pos) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    return v;
  };
  size_t pos = 8 + 4;  // magic + version
  const uint64_t count = u64_at(pos);
  pos += 8;
  for (uint64_t e = 0; e < count; ++e) {
    pos += 4 + size_t{u32_at(pos)} * 8;  // key size + hashes
    pos += 1;                            // verdict
    pos += 4;                            // var_count (left intact)
    pos += 4 + u32_at(pos);              // backend string
    pos += 8;                            // solve seconds
    const uint32_t model_size = u32_at(pos);
    pos += 4;
    for (uint32_t m = 0; m < model_size; ++m) {
      pos += 4 + u32_at(pos);  // variable name
      for (int i = 0; i < 8; ++i)
        bytes[pos + i] = static_cast<char>(value >> (8 * i));
      pos += 8;
    }
  }
  uint64_t checksum = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < bytes.size() - 8; ++i) {
    checksum ^= static_cast<unsigned char>(bytes[i]);
    checksum *= 0x100000001b3ull;
  }
  for (int i = 0; i < 8; ++i)
    bytes[bytes.size() - 8 + i] = static_cast<char>(checksum >> (8 * i));
  return bytes;
}

TEST_F(PortfolioEngineTest, CollidingStoreEntriesNeverCorruptExploration) {
  // A key collision hands the engine a persisted entry for a *different*
  // query: keys and verdicts plausible, models wrong. Simulate it by
  // corrupting every model value inside a genuinely warm store file (and
  // re-sealing the checksum, so only the engine's validation can object).
  // The engine must reject each bogus sat model by evaluation, fall back to
  // the solver, and explore the exact same path set.
  const std::string store_dir = smt::fresh_dir("collision");
  core::Program program = load_asm(kThreeBranchGuest);
  core::EngineOptions options;
  // No model-reuse pre-check: a rejected store hit must fall through to the
  // backend, so the assertion below can observe the fallback directly.
  options.presolve_models = false;
  options.solver_store = smt::SolverStore::open(store_dir);
  Exploration cold = explore(program, SolverSetup::kPlain, options);
  EXPECT_GT(cold.stats.store_entries, 0u);

  const std::string file = options.solver_store->path();
  std::string bytes;
  {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    const std::string tampered = clobber_store_models(bytes, 0);
    out.write(tampered.data(),
              static_cast<std::streamsize>(tampered.size()));
  }

  options.solver_store = smt::SolverStore::open(store_dir);
  ASSERT_TRUE(options.solver_store->load_error().empty());  // checksum holds
  Exploration warm = explore(program, SolverSetup::kPlain, options);
  EXPECT_EQ(warm.path_keys, cold.path_keys);
  EXPECT_EQ(warm.failures, cold.failures);
  EXPECT_EQ(warm.stats.paths, cold.stats.paths);
  // Every zeroed sat model violates its query (each flip negates a branch
  // the all-zero seed path took), so validation provably fired and sent
  // work back to the solver instead of trusting the store.
  EXPECT_GT(backend_calls(warm.stats), 0u);
  EXPECT_GT(warm.stats.store_misses, 0u);
}

TEST_F(PortfolioEngineTest, InjectedUnknownsAreNeverPersisted) {
  // Fault injection forces *every* solver check to degrade to kUnknown
  // ("solver" site, all occurrences): nothing definitive is ever produced,
  // so nothing may reach the persistent store — end to end, through the
  // worker loop's insert path and the store's own kUnknown rejection.
  const std::string store_dir = smt::fresh_dir("faulty");
  core::Program program = load_asm(kThreeBranchGuest);
  core::EngineOptions options;
  std::string error;
  options.fault_plan = support::FaultPlan::parse("solver@1+", &error);
  ASSERT_TRUE(options.fault_plan) << error;
  options.solver_store = smt::SolverStore::open(store_dir);
  Exploration run = explore(program, SolverSetup::kPlain, options);
  EXPECT_GT(run.stats.queries_unknown, 0u);
  EXPECT_EQ(run.stats.store_entries, 0u);
  EXPECT_EQ(smt::SolverStore::open(store_dir)->size(), 0u);
}

TEST_F(PortfolioEngineTest, FindingTriplesIdenticalWithPortfolioOnAndOff) {
  // Racing backends must be invisible to bug finding: whichever member wins
  // whichever query, the (oracle, pc, call-depth) triples over the buggy
  // corpus are bit-identical to the plain-z3 campaign.
  for (const char* name :
       {"buggy-div", "buggy-overflow", "buggy-unaligned", "buggy-stack-smash"}) {
    core::Program program = workloads::load_workload(table, name);
    auto campaign = [&](SolverSetup setup) {
      core::DseEngine dse(factory(program, setup, "all"),
                          core::EngineOptions{});
      dse.explore();
      std::multiset<uint64_t> keys;
      for (const core::Finding& f : dse.findings())
        keys.insert(core::finding_key(f.oracle, f.pc, f.call_depth));
      return keys;
    };
    std::multiset<uint64_t> plain = campaign(SolverSetup::kPlain);
    EXPECT_FALSE(plain.empty()) << name;
    EXPECT_EQ(plain, campaign(SolverSetup::kPortfolio)) << name;
  }
}

// -- Table I bit-identity sweep. ---------------------------------------------
//
// The portfolio and the store may only change cost, never meaning: across
// {portfolio on, off} x {store cold, warm} x {dfs, coverage} x jobs {1, 4},
// the discovered path set and failures must be bit-identical to the plain
// dfs/jobs=1 reference. One store directory is shared by all configurations
// of a workload, so the first run is the cold one and every later run is
// warm — which also proves warm answers (possibly models minted by a
// *different* backend in an earlier configuration) cause zero path drift.
// Excluded from the sanitizer CI jobs like the other full-workload sweeps.

class PortfolioWorkloadIdentity
    : public PortfolioEngineTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(PortfolioWorkloadIdentity, PathSetInvariantAcrossPortfolioStoreJobs) {
  core::Program program = workloads::load_workload(table, GetParam());
  const std::string store_dir =
      smt::fresh_dir(std::string("sweep-") + GetParam());

  Exploration reference =
      explore(program, SolverSetup::kPlain, core::EngineOptions{});
  EXPECT_GT(reference.stats.paths, 100u);
  EXPECT_EQ(reference.stats.paths, reference.path_keys.size());

  bool first_config = true;
  core::EngineStats last_stats;
  for (SolverSetup setup : {SolverSetup::kPortfolio, SolverSetup::kPlain}) {
    for (core::SearchKind kind :
         {core::SearchKind::kDepthFirst, core::SearchKind::kCoverageGuided}) {
      for (unsigned jobs : {1u, 4u}) {
        core::EngineOptions options;
        options.search = kind;
        options.jobs = jobs;
        options.solver_store = smt::SolverStore::open(store_dir);
        ASSERT_TRUE(options.solver_store->load_error().empty());
        Exploration run = explore(program, setup, options);
        std::string label =
            std::string(setup == SolverSetup::kPortfolio ? "portfolio"
                                                         : "plain") +
            " " + core::search_kind_name(kind) +
            " jobs=" + std::to_string(jobs) +
            (first_config ? " (cold)" : " (warm)");
        EXPECT_EQ(run.stats.paths, reference.stats.paths) << label;
        EXPECT_EQ(run.path_keys, reference.path_keys) << label;
        EXPECT_EQ(run.failures, reference.failures) << label;
        if (first_config) {
          // The cold portfolio run must actually exercise the new machinery.
          EXPECT_GT(run.stats.solver.portfolio_races +
                        run.stats.solver.portfolio_routed,
                    0u)
              << label;
          EXPECT_EQ(run.stats.store_hits, 0u) << label;
          EXPECT_GT(run.stats.store_entries, 0u) << label;
        }
        first_config = false;
        last_stats = run.stats;
      }
    }
  }
  // The final (warmest) configuration answers from the store.
  EXPECT_GT(last_stats.store_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table1, PortfolioWorkloadIdentity,
                         ::testing::Values("base64-encode", "bubble-sort",
                                           "clif-parser", "insertion-sort",
                                           "uri-parser"));

}  // namespace
}  // namespace binsym

// -- Persistent store unit suite. ---------------------------------------------

namespace binsym::smt {
namespace {

QueryCache::Key key_of(std::initializer_list<uint64_t> hashes) {
  QueryCache::Key key(hashes);
  std::sort(key.begin(), key.end());
  return key;
}

SolverStore::Entry sat_entry(std::string backend = "z3") {
  SolverStore::Entry entry;
  entry.verdict = CheckResult::kSat;
  entry.model = {{"sym_input_0", 42}, {"sym_input_1", 7}};
  entry.backend = std::move(backend);
  entry.solve_seconds = 0.125;
  entry.var_count = 2;
  return entry;
}

TEST(SolverStoreTest, RoundTripsThroughTheBackingFile) {
  const std::string dir = fresh_dir("roundtrip");
  {
    auto store = SolverStore::open(dir);
    EXPECT_TRUE(store->load_error().empty());
    EXPECT_EQ(store->size(), 0u);
    store->insert(key_of({1, 2, 3}), sat_entry());
    SolverStore::Entry unsat;
    unsat.verdict = CheckResult::kUnsat;
    unsat.backend = "bitblast+cdcl";
    unsat.solve_seconds = 2.5;
    store->insert(key_of({0xdeadbeef}), unsat);
    EXPECT_EQ(store->size(), 2u);
    EXPECT_TRUE(store->flush());
  }
  auto reopened = SolverStore::open(dir);
  EXPECT_TRUE(reopened->load_error().empty());
  ASSERT_EQ(reopened->size(), 2u);

  SolverStore::Entry entry;
  ASSERT_TRUE(reopened->lookup(key_of({3, 1, 2}), &entry));  // order-blind key
  EXPECT_EQ(entry.verdict, CheckResult::kSat);
  EXPECT_EQ(entry.backend, "z3");
  EXPECT_EQ(entry.solve_seconds, 0.125);
  EXPECT_EQ(entry.var_count, 2u);
  ASSERT_EQ(entry.model.size(), 2u);
  EXPECT_EQ(entry.model[0], (std::pair<std::string, uint64_t>{"sym_input_0", 42}));
  ASSERT_TRUE(reopened->lookup(key_of({0xdeadbeef}), &entry));
  EXPECT_EQ(entry.verdict, CheckResult::kUnsat);
  EXPECT_TRUE(entry.model.empty());
  EXPECT_FALSE(reopened->lookup(key_of({9, 9, 9}), nullptr));
  EXPECT_EQ(reopened->hits(), 2u);
  EXPECT_EQ(reopened->misses(), 1u);
}

TEST(SolverStoreTest, UnknownIsNeverAdmittedAndFirstVerdictWins) {
  auto store = SolverStore::open(fresh_dir("admission"));
  SolverStore::Entry unknown;
  unknown.verdict = CheckResult::kUnknown;
  store->insert(key_of({5}), unknown);
  EXPECT_EQ(store->size(), 0u);

  store->insert(key_of({5}), sat_entry("first"));
  store->insert(key_of({5}), sat_entry("second"));
  SolverStore::Entry entry;
  ASSERT_TRUE(store->lookup(key_of({5}), &entry));
  EXPECT_EQ(entry.backend, "first");
  EXPECT_EQ(store->size(), 1u);
}

TEST(SolverStoreTest, VarCountMismatchIsServedAsAMiss) {
  // Two different queries can collide on the 64-bit content-hash key; the
  // recorded distinct-variable count is the cheap discriminator that keeps
  // such an entry from answering the wrong query. The engine uses this
  // overload for every store consultation.
  auto store = SolverStore::open(fresh_dir("discriminator"));
  store->insert(key_of({77}), sat_entry());  // var_count == 2

  SolverStore::Entry out;
  EXPECT_FALSE(store->lookup(key_of({77}), /*var_count=*/3, &out));
  EXPECT_TRUE(store->lookup(key_of({77}), /*var_count=*/2, &out));
  EXPECT_EQ(out.backend, "z3");
  EXPECT_EQ(store->hits(), 1u);
  EXPECT_EQ(store->misses(), 1u);  // the collision counted as a miss
}

TEST(SolverStoreTest, MissingFileIsACleanColdStart) {
  auto store = SolverStore::open(fresh_dir("empty"));
  EXPECT_TRUE(store->load_error().empty());
  EXPECT_EQ(store->size(), 0u);
}

class SolverStoreCorruption : public ::testing::Test {
 protected:
  /// A flushed two-entry store, its file path and raw bytes.
  void SetUp() override {
    dir_ = fresh_dir("corrupt");
    auto store = SolverStore::open(dir_);
    store->insert(key_of({11, 22}), sat_entry());
    SolverStore::Entry unsat;
    unsat.verdict = CheckResult::kUnsat;
    unsat.backend = "z3";
    store->insert(key_of({33}), unsat);
    ASSERT_TRUE(store->flush());
    file_ = store->path();
    std::ifstream in(file_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes_ = buffer.str();
    ASSERT_GT(bytes_.size(), 28u);
  }

  void write_file(const std::string& bytes) {
    std::ofstream out(file_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// FNV-1a as store.cpp computes it, so tests can re-seal tampered bytes
  /// (distinguishing "checksum caught it" from deeper validation).
  static uint64_t fnv1a(const std::string& data, size_t size) {
    uint64_t hash = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i) {
      hash ^= static_cast<unsigned char>(data[i]);
      hash *= 0x100000001b3ull;
    }
    return hash;
  }

  static void reseal(std::string& bytes) {
    const uint64_t checksum = fnv1a(bytes, bytes.size() - 8);
    for (int i = 0; i < 8; ++i)
      bytes[bytes.size() - 8 + i] = static_cast<char>(checksum >> (8 * i));
  }

  std::string dir_;
  std::string file_;
  std::string bytes_;
};

TEST_F(SolverStoreCorruption, FlippedByteDegradesToDiagnosedColdStart) {
  for (const size_t offset : {size_t{0}, size_t{9}, bytes_.size() / 2}) {
    std::string tampered = bytes_;
    tampered[offset] = static_cast<char>(tampered[offset] ^ 0x40);
    write_file(tampered);
    auto store = SolverStore::open(dir_);
    EXPECT_FALSE(store->load_error().empty()) << "offset " << offset;
    EXPECT_EQ(store->size(), 0u) << "offset " << offset;
  }
}

TEST_F(SolverStoreCorruption, TruncationDegradesToDiagnosedColdStart) {
  for (const size_t keep : {size_t{4}, size_t{27}, bytes_.size() - 1}) {
    write_file(bytes_.substr(0, keep));
    auto store = SolverStore::open(dir_);
    EXPECT_FALSE(store->load_error().empty()) << "kept " << keep;
    EXPECT_EQ(store->size(), 0u) << "kept " << keep;
  }
}

TEST_F(SolverStoreCorruption, VersionSkewIsColdStartEvenWithAValidChecksum) {
  // A file written by a future (or past) format version is ignored, not
  // half-parsed: patch the version field and re-seal the checksum so only
  // the version check can reject it.
  std::string skewed = bytes_;
  skewed[8] = static_cast<char>(SolverStore::kFormatVersion + 1);
  reseal(skewed);
  write_file(skewed);
  auto store = SolverStore::open(dir_);
  EXPECT_NE(store->load_error().find("version"), std::string::npos)
      << store->load_error();
  EXPECT_EQ(store->size(), 0u);
}

TEST_F(SolverStoreCorruption, OversizedLengthFieldIsRejectedBeforeAllocating) {
  // A resealed file whose key-count field claims more data than the file
  // holds must fail the plausibility check, not attempt a giant allocation.
  std::string skewed = bytes_;
  // Entry area starts after magic(8) + version(4) + count(8); the first
  // field is the first entry's key size (u32).
  for (int i = 0; i < 4; ++i) skewed[20 + i] = static_cast<char>(0xff);
  reseal(skewed);
  write_file(skewed);
  auto store = SolverStore::open(dir_);
  EXPECT_FALSE(store->load_error().empty());
  EXPECT_EQ(store->size(), 0u);
}

TEST_F(SolverStoreCorruption, DeserializeRejectsTrailingGarbage) {
  std::string padded = bytes_;
  padded.insert(padded.size() - 8, "extra");
  reseal(padded);
  auto store = SolverStore::open(fresh_dir("garbage"));
  std::string error;
  EXPECT_FALSE(store->deserialize(padded, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace binsym::smt
