// SMT-LIB printer tests: golden fragments + well-formedness (declared
// variables, balanced parens, shared nodes let-bound once).
#include <gtest/gtest.h>

#include <algorithm>

#include "smt/smtlib.hpp"

namespace binsym::smt {
namespace {

TEST(Smtlib, Constants) {
  Context ctx;
  EXPECT_EQ(to_smtlib(ctx, ctx.constant(0xab, 8)), "#xab");
  EXPECT_EQ(to_smtlib(ctx, ctx.constant(1, 1)), "#b1");
  EXPECT_EQ(to_smtlib(ctx, ctx.constant(5, 12)), "#x005");
  EXPECT_EQ(to_smtlib(ctx, ctx.constant(0b101, 5)), "#b00101");
}

TEST(Smtlib, SimpleExpression) {
  Context ctx;
  ExprRef x = ctx.var("x", 32);
  ExprRef e = ctx.add(x, ctx.constant(1, 32));
  EXPECT_EQ(to_smtlib(ctx, e), "(bvadd x #x00000001)");
}

TEST(Smtlib, ParameterizedOps) {
  Context ctx;
  ExprRef b = ctx.var("b", 8);
  EXPECT_EQ(to_smtlib(ctx, ctx.zext(b, 32)), "((_ zero_extend 24) b)");
  EXPECT_EQ(to_smtlib(ctx, ctx.sext(b, 16)), "((_ sign_extend 8) b)");
  ExprRef w = ctx.var("w", 32);
  EXPECT_EQ(to_smtlib(ctx, ctx.extract(w, 15, 8)), "((_ extract 15 8) w)");
}

TEST(Smtlib, SharedNodesUseLet) {
  Context ctx;
  ExprRef x = ctx.var("x", 32);
  ExprRef sum = ctx.add(x, ctx.var("y", 32));
  ExprRef e = ctx.mul(sum, sum);
  std::string text = to_smtlib(ctx, e);
  EXPECT_NE(text.find("(let (("), std::string::npos);
  // The shared bvadd must be printed exactly once.
  size_t first = text.find("bvadd");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("bvadd", first + 1), std::string::npos);
}

TEST(Smtlib, QueryShape) {
  Context ctx;
  ExprRef x = ctx.var("x", 8);
  std::string query = query_string(
      ctx, {ctx.ult(x, ctx.constant(10, 8)),
            ctx.not_(ctx.eq(x, ctx.constant(3, 8)))});
  EXPECT_NE(query.find("(set-logic QF_BV)"), std::string::npos);
  EXPECT_NE(query.find("(declare-const x (_ BitVec 8))"), std::string::npos);
  EXPECT_NE(query.find("(assert"), std::string::npos);
  EXPECT_NE(query.find("(check-sat)"), std::string::npos);
  // Balanced parentheses.
  EXPECT_EQ(std::count(query.begin(), query.end(), '('),
            std::count(query.begin(), query.end(), ')'));
}

TEST(Smtlib, Fig2StyleDivuBranchQuery) {
  // The shape of the paper's Fig. 2 solver query: DIVU feeding a BLTU
  // branch condition. The printed query must mention bvudiv and bvult.
  Context ctx;
  ExprRef x = ctx.var("a0", 32);
  ExprRef y = ctx.var("a1", 32);
  ExprRef z = ctx.ite(ctx.eq(y, ctx.constant(0, 32)),
                      ctx.constant(0xffffffff, 32), ctx.udiv(x, y));
  std::string query = query_string(ctx, {ctx.ult(x, z)});
  EXPECT_NE(query.find("bvudiv"), std::string::npos);
  EXPECT_NE(query.find("bvult"), std::string::npos);
  EXPECT_NE(query.find("ite"), std::string::npos);
}

TEST(Smtlib, AssertionsBooleanized) {
  // Width-1 bitvectors must be compared against #b1 to become Bool.
  Context ctx;
  ExprRef b = ctx.var("b", 1);
  std::string query = query_string(ctx, {b}, false);
  EXPECT_NE(query.find("(assert (= b #b1))"), std::string::npos);
}

}  // namespace
}  // namespace binsym::smt
