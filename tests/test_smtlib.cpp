// SMT-LIB printer tests: golden fragments + well-formedness (declared
// variables, balanced parens, shared nodes let-bound once), and the
// parser's round-trip property: parsing printed text back into the same
// interning context returns the original node.
#include <gtest/gtest.h>

#include <algorithm>

#include "smt/smtlib.hpp"

namespace binsym::smt {
namespace {

TEST(Smtlib, Constants) {
  Context ctx;
  EXPECT_EQ(to_smtlib(ctx, ctx.constant(0xab, 8)), "#xab");
  EXPECT_EQ(to_smtlib(ctx, ctx.constant(1, 1)), "#b1");
  EXPECT_EQ(to_smtlib(ctx, ctx.constant(5, 12)), "#x005");
  EXPECT_EQ(to_smtlib(ctx, ctx.constant(0b101, 5)), "#b00101");
}

TEST(Smtlib, SimpleExpression) {
  Context ctx;
  ExprRef x = ctx.var("x", 32);
  ExprRef e = ctx.add(x, ctx.constant(1, 32));
  EXPECT_EQ(to_smtlib(ctx, e), "(bvadd x #x00000001)");
}

TEST(Smtlib, ParameterizedOps) {
  Context ctx;
  ExprRef b = ctx.var("b", 8);
  EXPECT_EQ(to_smtlib(ctx, ctx.zext(b, 32)), "((_ zero_extend 24) b)");
  EXPECT_EQ(to_smtlib(ctx, ctx.sext(b, 16)), "((_ sign_extend 8) b)");
  ExprRef w = ctx.var("w", 32);
  EXPECT_EQ(to_smtlib(ctx, ctx.extract(w, 15, 8)), "((_ extract 15 8) w)");
}

TEST(Smtlib, SharedNodesUseLet) {
  Context ctx;
  ExprRef x = ctx.var("x", 32);
  ExprRef sum = ctx.add(x, ctx.var("y", 32));
  ExprRef e = ctx.mul(sum, sum);
  std::string text = to_smtlib(ctx, e);
  EXPECT_NE(text.find("(let (("), std::string::npos);
  // The shared bvadd must be printed exactly once.
  size_t first = text.find("bvadd");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("bvadd", first + 1), std::string::npos);
}

TEST(Smtlib, QueryShape) {
  Context ctx;
  ExprRef x = ctx.var("x", 8);
  std::string query = query_string(
      ctx, {ctx.ult(x, ctx.constant(10, 8)),
            ctx.not_(ctx.eq(x, ctx.constant(3, 8)))});
  EXPECT_NE(query.find("(set-logic QF_BV)"), std::string::npos);
  EXPECT_NE(query.find("(declare-const x (_ BitVec 8))"), std::string::npos);
  EXPECT_NE(query.find("(assert"), std::string::npos);
  EXPECT_NE(query.find("(check-sat)"), std::string::npos);
  // Balanced parentheses.
  EXPECT_EQ(std::count(query.begin(), query.end(), '('),
            std::count(query.begin(), query.end(), ')'));
}

TEST(Smtlib, Fig2StyleDivuBranchQuery) {
  // The shape of the paper's Fig. 2 solver query: DIVU feeding a BLTU
  // branch condition. The printed query must mention bvudiv and bvult.
  Context ctx;
  ExprRef x = ctx.var("a0", 32);
  ExprRef y = ctx.var("a1", 32);
  ExprRef z = ctx.ite(ctx.eq(y, ctx.constant(0, 32)),
                      ctx.constant(0xffffffff, 32), ctx.udiv(x, y));
  std::string query = query_string(ctx, {ctx.ult(x, z)});
  EXPECT_NE(query.find("bvudiv"), std::string::npos);
  EXPECT_NE(query.find("bvult"), std::string::npos);
  EXPECT_NE(query.find("ite"), std::string::npos);
}

TEST(Smtlib, AssertionsBooleanized) {
  // Width-1 bitvectors must be compared against #b1 to become Bool.
  Context ctx;
  ExprRef b = ctx.var("b", 1);
  std::string query = query_string(ctx, {b}, false);
  EXPECT_NE(query.find("(assert (= b #b1))"), std::string::npos);
}

// -- Parser round-trips. -----------------------------------------------------
//
// Parsing rebuilds through the context's folding builders, so in an
// interning context parse(print(e)) must return exactly e — the text is a
// faithful external name for the node.

TEST(SmtlibParse, RoundTripSimpleExpression) {
  Context ctx;
  ExprRef x = ctx.var("x", 32);
  ExprRef e = ctx.add(ctx.mul(x, ctx.constant(3, 32)), ctx.constant(1, 32));
  std::string error;
  EXPECT_EQ(parse_smtlib(ctx, to_smtlib(ctx, e), &error), e) << error;
}

TEST(SmtlibParse, RoundTripLetSharedNodes) {
  Context ctx;
  ExprRef x = ctx.var("x", 32);
  ExprRef sum = ctx.add(x, ctx.var("y", 32));
  ExprRef e = ctx.mul(sum, sum);
  std::string text = to_smtlib(ctx, e);
  ASSERT_NE(text.find("(let (("), std::string::npos);  // shared => let-bound
  std::string error;
  EXPECT_EQ(parse_smtlib(ctx, text, &error), e) << error;
}

TEST(SmtlibParse, RoundTripDegenerateSingleUseChain) {
  // Every node used exactly once: no lets at all, just a nested tree. The
  // degenerate case exercises the parser without the binding environment.
  Context ctx;
  ExprRef a = ctx.var("a", 8);
  ExprRef b = ctx.var("b", 16);
  ExprRef e = ctx.ite(ctx.ult(ctx.zext(a, 16), b),
                      ctx.extract(b, 7, 0), ctx.not_(a));
  std::string text = to_smtlib(ctx, e);
  EXPECT_EQ(text.find("(let"), std::string::npos) << text;
  std::string error;
  EXPECT_EQ(parse_smtlib(ctx, text, &error), e) << error;
}

TEST(SmtlibParse, RoundTripParameterizedAndLiteralForms) {
  Context ctx;
  ExprRef w = ctx.var("w", 32);
  for (ExprRef e : {ctx.sext(ctx.extract(w, 15, 8), 32),
                    ctx.concat(ctx.extract(w, 31, 16), ctx.constant(5, 16)),
                    ctx.ashr(w, ctx.var("s", 32)),
                    ctx.eq(ctx.sle(w, ctx.constant(7, 32)),
                           ctx.slt(w, ctx.constant(9, 32)))}) {
    std::string error;
    EXPECT_EQ(parse_smtlib(ctx, to_smtlib(ctx, e), &error), e) << error;
  }
}

TEST(SmtlibParse, QueryPrintParsePrintIsAFixpoint) {
  Context ctx;
  ExprRef x = ctx.var("x", 8);
  ExprRef y = ctx.var("y", 8);
  ExprRef shared = ctx.add(x, y);
  std::vector<ExprRef> assertions = {
      ctx.ult(shared, ctx.constant(10, 8)),
      ctx.not_(ctx.eq(shared, ctx.constant(3, 8)))};
  std::string printed = query_string(ctx, assertions);

  // Parse into a fresh context (declarations come from the text itself),
  // then print again: the text must reach a fixpoint in one round.
  Context fresh;
  std::vector<ExprRef> parsed;
  std::string error;
  ASSERT_TRUE(parse_query(fresh, printed, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), assertions.size());
  EXPECT_EQ(query_string(fresh, parsed), printed);

  // And into the original context, each assertion is its original node.
  std::vector<ExprRef> again;
  ASSERT_TRUE(parse_query(ctx, printed, &again, &error)) << error;
  ASSERT_EQ(again.size(), assertions.size());
  for (size_t i = 0; i < again.size(); ++i)
    EXPECT_EQ(again[i], assertions[i]) << "assertion " << i;
}

TEST(SmtlibParse, DiagnosesMalformedInput) {
  Context ctx;
  ctx.var("x", 32);
  std::string error;
  EXPECT_EQ(parse_smtlib(ctx, "(bvadd x unknown)", &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(parse_smtlib(ctx, "(bvadd x #b1)", &error), nullptr);  // widths
  EXPECT_EQ(parse_smtlib(ctx, "(bvadd x", &error), nullptr);       // truncated
  EXPECT_EQ(parse_smtlib(ctx, "x trailing", &error), nullptr);
  std::vector<ExprRef> assertions;
  EXPECT_FALSE(parse_query(ctx, "(assert x)", &assertions, &error));  // not w1
}

}  // namespace
}  // namespace binsym::smt
