// Hardened-exploration tests: the deterministic fault-injection plan
// (support::FaultPlan), crash-isolated workers (requeue/poison accounting),
// engine resource budgets (wall-clock deadline, RSS ceiling), solver-unknown
// degradation, and backend failover — plus the core invariant that none of
// the hardening changes the explored path set when no fault actually fires.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "core/search.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "support/fault.hpp"

namespace binsym::core {
namespace {

using support::FaultPlan;
using support::FaultSite;

// -- FaultPlan grammar and firing semantics. ---------------------------------

TEST(FaultPlanParse, SingleShotClause) {
  std::string error;
  auto plan = FaultPlan::parse("solver@3", &error);
  ASSERT_TRUE(plan) << error;
  EXPECT_FALSE(plan->fire(FaultSite::kSolverUnknown));  // occurrence 1
  EXPECT_FALSE(plan->fire(FaultSite::kSolverUnknown));  // occurrence 2
  EXPECT_TRUE(plan->fire(FaultSite::kSolverUnknown));   // occurrence 3
  EXPECT_FALSE(plan->fire(FaultSite::kSolverUnknown));  // single-shot
  EXPECT_EQ(plan->occurrences(FaultSite::kSolverUnknown), 4u);
  EXPECT_EQ(plan->fired(FaultSite::kSolverUnknown), 1u);
  // Other sites are untouched by the clause.
  EXPECT_FALSE(plan->fire(FaultSite::kSnapshot));
  EXPECT_EQ(plan->fired(FaultSite::kSnapshot), 0u);
}

TEST(FaultPlanParse, OpenEndedClause) {
  auto plan = FaultPlan::parse("alloc@2+");
  ASSERT_TRUE(plan);
  EXPECT_FALSE(plan->fire(FaultSite::kAlloc));
  EXPECT_TRUE(plan->fire(FaultSite::kAlloc));
  EXPECT_TRUE(plan->fire(FaultSite::kAlloc));
  EXPECT_TRUE(plan->fire(FaultSite::kAlloc));
  EXPECT_EQ(plan->fired(FaultSite::kAlloc), 3u);
}

TEST(FaultPlanParse, PeriodicClause) {
  auto plan = FaultPlan::parse("snapshot@2:3");
  ASSERT_TRUE(plan);
  std::vector<bool> hits;
  for (int i = 0; i < 9; ++i) hits.push_back(plan->fire(FaultSite::kSnapshot));
  // Fires at occurrences 2, 5, 8.
  EXPECT_EQ(hits, (std::vector<bool>{false, true, false, false, true, false,
                                     false, true, false}));
}

TEST(FaultPlanParse, CommaListCombinesClauses) {
  std::string error;
  auto plan = FaultPlan::parse("solver@1,solver-throw@2,alloc@1+", &error);
  ASSERT_TRUE(plan) << error;
  EXPECT_TRUE(plan->fire(FaultSite::kSolverUnknown));
  EXPECT_FALSE(plan->fire(FaultSite::kSolverThrow));
  EXPECT_TRUE(plan->fire(FaultSite::kSolverThrow));
  EXPECT_TRUE(plan->fire(FaultSite::kAlloc));
}

TEST(FaultPlanParse, EmptySpecNeverFires) {
  auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(plan->fire(FaultSite::kSolverUnknown));
    EXPECT_FALSE(plan->fire(FaultSite::kAlloc));
  }
}

TEST(FaultPlanParse, DiagnosesMalformedSpecs) {
  struct Case {
    const char* spec;
    const char* needle;
  };
  const Case cases[] = {
      {"solver", "no '@'"},
      {"warp-core@1", "unknown fault site"},
      {"solver@0", "positive 1-based occurrence index"},
      {"solver@x", "positive 1-based occurrence index"},
      {"solver@2:0", "positive period"},
      {"solver@2:x", "positive period"},
      {"solver@2junk", "trailing garbage"},
      {"solver@1,,alloc@1", "no '@'"},  // empty clause inside a list
  };
  for (const Case& c : cases) {
    std::string error;
    EXPECT_FALSE(FaultPlan::parse(c.spec, &error)) << c.spec;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.spec << " -> " << error;
  }
}

// -- Engine-level harness. ---------------------------------------------------

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() { spec::install_rv32im(registry, table); }

  Program load(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  /// Per-worker resources over `program`; each worker gets its own context,
  /// executor and raw z3 backend (the engine layers cache/fault wrappers).
  WorkerFactory factory_for(const Program& program) {
    return [this, &program](unsigned) {
      WorkerResources r;
      r.ctx = std::make_unique<smt::Context>();
      r.executor = std::make_unique<BinSymExecutor>(*r.ctx, decoder, registry,
                                                    program);
      r.solver = smt::make_z3_solver(*r.ctx);
      return r;
    };
  }

  /// Explore and collect the set of taken/not-taken path keys plus stats.
  std::set<std::string> explore(DseEngine& engine, EngineStats* stats_out) {
    std::set<std::string> keys;
    EngineStats stats = engine.explore([&](const PathResult& path) {
      std::string key;
      for (const BranchRecord& b : path.trace.branches)
        key += b.taken ? '1' : '0';
      keys.insert(key);
    });
    if (stats_out) *stats_out = stats;
    return keys;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

// Two data-dependent branch sites over two symbolic input bytes: small,
// fully explorable, deterministic path set (the fault-free baseline).
constexpr const char* kTwoBranchGuest = R"(
_start:
    la a0, buf
    li a1, 2
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    li t3, 50
    bltu t1, t3, half
    nop
half:
    bltu t1, t2, done
done:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 2
)";

/// A guest with one independent branch per symbolic input byte: 2^n paths,
/// wide enough that a one-second wall-clock deadline fires mid-run.
std::string wide_guest(unsigned bytes) {
  std::string src = R"(
_start:
    la a0, buf
    li a1, )" + std::to_string(bytes) + R"(
    li a7, 2
    ecall
    la t0, buf
    li t3, 50
)";
  for (unsigned i = 0; i < bytes; ++i) {
    src += "    lbu t1, " + std::to_string(i) + "(t0)\n";
    src += "    bltu t1, t3, skip" + std::to_string(i) + "\n";
    src += "    nop\nskip" + std::to_string(i) + ":\n";
  }
  src += R"(
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space )" + std::to_string(bytes) + "\n";
  return src;
}

TEST_F(RobustnessTest, UnknownFlipsAreSkippedNotTreatedAsUnsat) {
  // Every solver query returns kUnknown: the engine must degrade to the
  // seed path alone — counting skips, never misclassifying as infeasible.
  Program program = load(kTwoBranchGuest);
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  EngineOptions options;
  options.fault_plan = FaultPlan::parse("solver@1+");
  ASSERT_TRUE(options.fault_plan);
  DseEngine engine(executor, smt::make_z3_solver(ctx), options);

  EngineStats stats;
  std::set<std::string> paths = explore(engine, &stats);
  EXPECT_EQ(paths.size(), 1u);  // only the all-zero seed path
  EXPECT_EQ(stats.feasible_flips, 0u);
  EXPECT_EQ(stats.infeasible_flips, 0u);  // unknown is NOT unsat
  EXPECT_GT(stats.flip_attempts, 0u);
  EXPECT_EQ(stats.flips_skipped_unknown, stats.flip_attempts);
  EXPECT_GT(stats.queries_unknown, 0u);
  // Giving up on queries degrades coverage but is not a worker failure.
  EXPECT_FALSE(stats.incomplete) << stats.incomplete_reason;
  EXPECT_EQ(stats.worker_errors, 0u);
  // Unknown verdicts must never poison the query cache.
  EXPECT_EQ(stats.solver.cache_hits, 0u);
}

TEST_F(RobustnessTest, FaultMatrixNeverCrashesAndNeverInventsPaths) {
  // Sweep every fault site across search strategies and worker counts: each
  // run must terminate normally, and any paths it does report must be real
  // ones (a subset of the fault-free set) — faults degrade, never corrupt.
  Program program = load(kTwoBranchGuest);

  std::set<std::string> baseline;
  {
    EngineOptions options;
    DseEngine engine(factory_for(program), options);
    baseline = explore(engine, nullptr);
  }
  ASSERT_GE(baseline.size(), 3u);

  const char* specs[] = {"solver@2",       "solver@1+",      "solver@2:2",
                         "solver-throw@1", "solver-throw@1+", "snapshot@1+",
                         "alloc@1"};
  const SearchKind searches[] = {SearchKind::kDepthFirst,
                                 SearchKind::kCoverageGuided};
  for (const char* spec : specs) {
    for (SearchKind search : searches) {
      for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE(std::string(spec) + " search=" +
                     std::to_string(static_cast<int>(search)) +
                     " jobs=" + std::to_string(jobs));
        EngineOptions options;
        options.search = search;
        options.jobs = jobs;
        options.fault_plan = FaultPlan::parse(spec);
        ASSERT_TRUE(options.fault_plan);
        DseEngine engine(factory_for(program), options);
        EngineStats stats;
        std::set<std::string> paths = explore(engine, &stats);
        for (const std::string& key : paths)
          EXPECT_TRUE(baseline.count(key)) << "invented path " << key;
        // Every isolated job error was either retried or poisoned.
        EXPECT_EQ(stats.worker_errors,
                  stats.jobs_requeued + stats.jobs_poisoned);
        // Errors must be surfaced, not silently swallowed.
        if (stats.worker_errors > 0) {
          EXPECT_TRUE(stats.incomplete);
        }
      }
    }
  }
}

TEST_F(RobustnessTest, CrashedJobIsRequeuedOnceAndRetrySucceeds) {
  // A single injected backend crash: the job is retried, the retry runs
  // clean (the fault is single-shot), and the full path set still comes out.
  Program program = load(kTwoBranchGuest);

  std::set<std::string> baseline;
  {
    EngineOptions options;
    DseEngine engine(factory_for(program), options);
    baseline = explore(engine, nullptr);
  }

  EngineOptions options;
  options.fault_plan = FaultPlan::parse("solver-throw@1");
  ASSERT_TRUE(options.fault_plan);
  DseEngine engine(factory_for(program), options);
  EngineStats stats;
  std::set<std::string> paths = explore(engine, &stats);

  EXPECT_EQ(paths, baseline);  // nothing lost: the retry re-covered the job
  EXPECT_EQ(stats.worker_errors, 1u);
  EXPECT_EQ(stats.jobs_requeued, 1u);
  EXPECT_EQ(stats.jobs_poisoned, 0u);
  // The error is still reported: the run is flagged, not silently patched.
  EXPECT_TRUE(stats.incomplete);
  EXPECT_NE(stats.incomplete_reason.find("worker error"), std::string::npos)
      << stats.incomplete_reason;
  EXPECT_NE(stats.incomplete_reason.find("injected solver backend failure"),
            std::string::npos)
      << stats.incomplete_reason;
}

TEST_F(RobustnessTest, PersistentlyCrashingJobIsPoisonedAfterRetryBudget) {
  // Every solver call throws: the root job errors, its one retry errors
  // again, and the job is poisoned instead of looping forever.
  Program program = load(kTwoBranchGuest);
  EngineOptions options;
  options.fault_plan = FaultPlan::parse("solver-throw@1+");
  ASSERT_TRUE(options.fault_plan);
  DseEngine engine(factory_for(program), options);
  EngineStats stats;
  std::set<std::string> paths = explore(engine, &stats);

  // The concrete seed run needs no solver, so the path itself is reported
  // (twice over the retry — the same key, hence one set entry).
  EXPECT_EQ(paths.size(), 1u);
  EXPECT_EQ(stats.worker_errors, 2u);
  EXPECT_EQ(stats.jobs_requeued, 1u);
  EXPECT_EQ(stats.jobs_poisoned, 1u);
  EXPECT_TRUE(stats.incomplete);
}

TEST_F(RobustnessTest, MemoryBudgetStopsExplorationUpFront) {
  // A 1 MiB RSS ceiling is below any real process footprint: the budget
  // check must stop the run before the first job and say why.
  Program program = load(kTwoBranchGuest);
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  EngineOptions options;
  options.memory_budget_mb = 1;
  DseEngine engine(executor, smt::make_z3_solver(ctx), options);
  EngineStats stats;
  std::set<std::string> paths = explore(engine, &stats);

  EXPECT_TRUE(paths.empty());
  EXPECT_EQ(stats.paths, 0u);
  EXPECT_TRUE(stats.incomplete);
  EXPECT_NE(stats.incomplete_reason.find("memory budget"), std::string::npos)
      << stats.incomplete_reason;
}

TEST_F(RobustnessTest, WallClockDeadlineYieldsPartialReport) {
  // 2^20 paths cannot be enumerated in one second; the deadline must cut
  // the run short with a partial (but non-empty) report marked incomplete.
  Program program = load(wide_guest(20));
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  EngineOptions options;
  options.deadline_secs = 1;
  DseEngine engine(executor, smt::make_z3_solver(ctx), options);
  EngineStats stats;
  std::set<std::string> paths = explore(engine, &stats);

  EXPECT_GE(paths.size(), 1u);
  EXPECT_LT(paths.size(), 1u << 20);
  EXPECT_TRUE(stats.incomplete);
  EXPECT_NE(stats.incomplete_reason.find("deadline"), std::string::npos)
      << stats.incomplete_reason;
}

TEST_F(RobustnessTest, FailoverRescuesEveryUnknownSoNoPathIsLost) {
  // Primary backend gives up on every other query; the failover wrapper
  // retries each on the secondary, so the engine never sees an unknown and
  // the explored path set matches the fault-free baseline exactly.
  Program program = load(kTwoBranchGuest);

  std::set<std::string> baseline;
  {
    smt::Context ctx;
    BinSymExecutor executor(ctx, decoder, registry, program);
    DseEngine engine(executor, smt::make_z3_solver(ctx));
    baseline = explore(engine, nullptr);
  }

  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  auto plan = FaultPlan::parse("solver@1:2");  // every odd query -> unknown
  ASSERT_TRUE(plan);
  auto flaky_primary = std::make_unique<smt::FaultInjectingSolver>(
      smt::make_z3_solver(ctx), plan);
  auto solver = std::make_unique<smt::FailoverSolver>(
      std::move(flaky_primary), [&ctx] { return smt::make_z3_solver(ctx); });
  DseEngine engine(executor, std::move(solver));
  EngineStats stats;
  std::set<std::string> paths = explore(engine, &stats);

  EXPECT_EQ(paths, baseline);
  EXPECT_GE(stats.solver.failover_rescues, 1u);
  // Rescues are invisible to the engine: no unknowns, no skipped flips.
  EXPECT_EQ(stats.queries_unknown, 0u);
  EXPECT_EQ(stats.flips_skipped_unknown, 0u);
  EXPECT_FALSE(stats.incomplete) << stats.incomplete_reason;
  EXPECT_NE(stats.solver_name.find("+failover"), std::string::npos)
      << stats.solver_name;
}

TEST_F(RobustnessTest, WithoutFailoverTheSameFaultsCostCoverage) {
  // Contrast case for the rescue test above: the same flaky primary without
  // a failover wrapper leaks its unknowns into the engine as skipped flips.
  Program program = load(kTwoBranchGuest);
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  auto plan = FaultPlan::parse("solver@1+");
  ASSERT_TRUE(plan);
  auto solver = std::make_unique<smt::FaultInjectingSolver>(
      smt::make_z3_solver(ctx), plan);
  DseEngine engine(executor, std::move(solver));
  EngineStats stats;
  std::set<std::string> paths = explore(engine, &stats);

  EXPECT_EQ(paths.size(), 1u);
  EXPECT_GT(stats.flips_skipped_unknown, 0u);
  EXPECT_EQ(stats.solver.failover_rescues, 0u);
}

TEST_F(RobustnessTest, HardeningLeavesThePathSetUntouched) {
  // Core invariant: with no fault firing, the full hardening stack (failover
  // wrapper + generous deadline + retry budget) explores exactly the same
  // path set as a plain solver, across search strategies and worker counts.
  Program program = load(kTwoBranchGuest);

  std::set<std::string> baseline;
  {
    smt::Context ctx;
    BinSymExecutor executor(ctx, decoder, registry, program);
    DseEngine engine(executor, smt::make_z3_solver(ctx));
    baseline = explore(engine, nullptr);
  }
  ASSERT_GE(baseline.size(), 3u);

  WorkerFactory hardened = [this, &program](unsigned) {
    WorkerResources r;
    r.ctx = std::make_unique<smt::Context>();
    r.executor =
        std::make_unique<BinSymExecutor>(*r.ctx, decoder, registry, program);
    auto solver = std::make_unique<smt::FailoverSolver>(
        smt::make_z3_solver(*r.ctx),
        [ctx = r.ctx.get()] { return smt::make_bitblast_solver(*ctx); });
    solver->set_deadline_ms(60'000);  // generous: must never fire
    r.solver = std::move(solver);
    return r;
  };

  for (SearchKind search :
       {SearchKind::kDepthFirst, SearchKind::kCoverageGuided}) {
    for (unsigned jobs : {1u, 4u}) {
      SCOPED_TRACE("search=" + std::to_string(static_cast<int>(search)) +
                   " jobs=" + std::to_string(jobs));
      EngineOptions options;
      options.search = search;
      options.jobs = jobs;
      options.deadline_secs = 3600;
      DseEngine engine(hardened, options);
      EngineStats stats;
      EXPECT_EQ(explore(engine, &stats), baseline);
      EXPECT_FALSE(stats.incomplete) << stats.incomplete_reason;
      EXPECT_EQ(stats.solver.failover_rescues, 0u);
    }
  }
}

}  // namespace
}  // namespace binsym::core
