// Tests for exploration tooling: branch coverage accounting, the DFS/BFS
// search-order ablation (identical path sets on fully-explorable programs)
// and the executor trace hook.
#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "core/stats.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "spec/registry.hpp"

namespace binsym::core {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() { spec::install_rv32im(registry, table); }

  Program load(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

constexpr const char* kTwoBranchGuest = R"(
_start:
    la a0, buf
    li a1, 2
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    li t3, 50
    bltu t1, t3, half
    nop
half:
    bltu t1, t2, done        # second branch site
done:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 2
)";

TEST_F(StatsTest, BranchCoverageAccumulates) {
  Program program = load(kTwoBranchGuest);
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  DseEngine engine(executor, smt::make_z3_solver(ctx));

  BranchCoverage coverage;
  engine.explore([&](const PathResult& path) { coverage.record(path.trace); });

  EXPECT_EQ(coverage.num_sites(), 2u);
  EXPECT_EQ(coverage.num_fully_covered(), 2u);  // fully explorable
  EXPECT_TRUE(coverage.one_sided_sites().empty());
  std::string report = coverage.report();
  EXPECT_NE(report.find("branch sites: 2"), std::string::npos);
}

TEST_F(StatsTest, OneSidedBranchDetected) {
  // Unsatisfiable second arm: b < 10 checked after asserting b == 0xff.
  Program program = load(R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    li t2, 0xff
    bne t1, t2, done
    li t3, 10
    bltu t1, t3, done        # never taken: t1 == 0xff here
done:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 1
)");
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  DseEngine engine(executor, smt::make_z3_solver(ctx));
  BranchCoverage coverage;
  engine.explore([&](const PathResult& path) { coverage.record(path.trace); });
  EXPECT_EQ(coverage.one_sided_sites().size(), 1u);
  EXPECT_NE(coverage.report().find("one-sided"), std::string::npos);
}

TEST_F(StatsTest, BfsAndDfsEnumerateTheSamePaths) {
  Program program = load(kTwoBranchGuest);

  auto path_set = [&](SearchKind kind) {
    smt::Context ctx;
    BinSymExecutor executor(ctx, decoder, registry, program);
    EngineOptions options;
    options.search = kind;
    DseEngine engine(executor, smt::make_z3_solver(ctx), options);
    std::set<std::string> keys;
    engine.explore([&](const PathResult& path) {
      std::string key;
      for (const BranchRecord& b : path.trace.branches)
        key += b.taken ? '1' : '0';
      keys.insert(key);
    });
    return keys;
  };

  std::set<std::string> dfs_paths = path_set(SearchKind::kDepthFirst);
  std::set<std::string> bfs_paths = path_set(SearchKind::kBreadthFirst);
  EXPECT_EQ(dfs_paths, bfs_paths);
  EXPECT_GE(dfs_paths.size(), 3u);
}

TEST_F(StatsTest, BfsDiscoversShallowPathsFirst) {
  Program program = load(kTwoBranchGuest);
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  EngineOptions options;
  options.search = SearchKind::kBreadthFirst;
  DseEngine engine(executor, smt::make_z3_solver(ctx), options);
  std::vector<size_t> depths;
  engine.explore([&](const PathResult& path) {
    depths.push_back(path.trace.branches.size());
  });
  // The flip bound is non-decreasing under BFS, so the first two runs come
  // from the shallowest frontier.
  ASSERT_GE(depths.size(), 2u);
}

// -- engine_stats_report formatting (previously only eyeballed). -------------

// Count non-overlapping occurrences of `needle` in `haystack`.
size_t occurrences(const std::string& haystack, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST_F(StatsTest, ReportListsEveryCounterExactlyOnce) {
  // Distinct values everywhere, all optional sections populated.
  EngineStats stats;
  stats.paths = 11;
  stats.failures = 12;
  stats.instructions = 13;
  stats.workers = 3;
  stats.seconds = 1.5;
  stats.flip_attempts = 14;
  stats.feasible_flips = 15;
  stats.infeasible_flips = 16;
  stats.divergences = 17;
  stats.max_branch_depth = 18;
  stats.peak_frontier = 19;
  stats.presolve_hits = 20;
  stats.presolve_misses = 21;
  stats.sliced_constraints = 22;
  stats.query_nodes_total = 23;
  stats.query_nodes_max = 24;
  stats.snapshot_hits = 25;
  stats.snapshot_misses = 26;
  stats.snapshot_captures = 27;
  stats.snapshot_evictions = 28;
  stats.snapshot_pages_copied = 29;
  stats.findings = 30;
  stats.finding_dupes = 31;
  stats.candidates_checked = 32;
  stats.candidates_feasible = 33;
  stats.static_proved = 34;
  stats.static_unknown = 35;
  stats.static_mismatches = 36;
  stats.uop_blocks_compiled = 48;
  stats.uop_cache_hits = 49;
  stats.uop_guard_bails = 50;
  stats.uop_invalidations = 51;
  stats.pages_clean_skipped = 52;
  stats.exprs_interned = 59;
  stats.intern_hits = 60;
  stats.arena_bytes = 61;
  stats.solver_name = "test-solver";
  stats.solver.queries = 40;
  stats.solver.sat = 41;
  stats.solver.unsat = 42;
  stats.solver.unknown = 43;
  stats.solver.cache_hits = 44;
  stats.solver.cache_misses = 45;
  stats.solver.incremental_checks = 46;
  stats.solver.reused_assertions = 47;
  stats.queries_unknown = 53;
  stats.flips_skipped_unknown = 54;
  stats.solver.failover_rescues = 55;
  stats.worker_errors = 56;
  stats.jobs_requeued = 57;
  stats.jobs_poisoned = 58;
  stats.solver.portfolio_races = 62;
  stats.solver.portfolio_routed = 63;
  stats.solver.portfolio_cancelled = 64;
  stats.solver.portfolio_wins = {{"alpha", 65}, {"beta", 66}};
  stats.store_hits = 67;
  stats.store_misses = 68;
  stats.store_entries = 69;
  stats.incomplete = true;
  stats.incomplete_reason = "test-incomplete-reason";

  std::string report = engine_stats_report(stats);
  const std::vector<std::string> counters = {
      "paths=11",          "failures=12",        "instructions=13",
      "workers=3",         "attempted=14",       "feasible=15",
      "infeasible=16",     "divergences=17",     "max-depth=18",
      "peak-frontier=19",  "presolve-hits=20",   "presolve-misses=21",
      "sliced-out=22",     "total=23",           "max=24",
      "hits=25",           "misses=26",          "captures=27",
      "evictions=28",      "pages-copied=29",    "findings=30",
      "dupes=31",          "candidates=32",      "feasible=33",
      "proved=34",         "unknown=35",         "mismatches=36",
      "blocks=48",         "hits=49",            "bails=50",
      "invalidations=51",  "clean-pages=52",
      "queries=40",        "sat=41",             "unsat=42",
      "unknown=43",        "cache-hits=44",      "cache-misses=45",
      "incremental-checks=46", "reused-assertions=47", "test-solver",
      "queries-unknown=53", "skipped-unknown=54", "failover-rescues=55",
      "worker-errors=56",  "requeued=57",        "poisoned=58",
      "interned=59",       "hits=60",            "arena-bytes=61",
      "races=62",          "routed=63",          "cancelled=64",
      "alpha=65",          "beta=66",            "hits=67",
      "misses=68",         "entries=69",
      "incomplete: test-incomplete-reason",
  };
  for (const std::string& counter : counters)
    EXPECT_EQ(occurrences(report, counter), 1u) << counter << "\n" << report;
}

TEST_F(StatsTest, ReportElidesZeroValuedOptionalSections) {
  // A minimal sequential exploration: no snapshots ran, no oracles were
  // attached, query-node measurement was off — those sections must not
  // clutter the report; the always-on sections must stay.
  EngineStats stats;
  stats.solver_name = "z3";
  std::string report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "snapshots:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "oracles:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "static:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "uops:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "query-nodes:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "intern:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "portfolio:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "store:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "robust:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "incomplete:"), 0u) << report;
  EXPECT_EQ(occurrences(report, "paths="), 1u);
  EXPECT_EQ(occurrences(report, "flips:"), 1u);
  EXPECT_EQ(occurrences(report, "solver[z3]:"), 1u);
  EXPECT_EQ(occurrences(report, "opts:"), 1u);

  // Any nonzero counter resurrects its section — and only it.
  stats.snapshot_captures = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "snapshots:"), 1u);
  EXPECT_EQ(occurrences(report, "oracles:"), 0u);
  stats.candidates_checked = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "oracles:"), 1u);
  EXPECT_EQ(occurrences(report, "static:"), 0u);
  stats.static_proved = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "static:"), 1u);
  EXPECT_EQ(occurrences(report, "uops:"), 0u);
  stats.uop_cache_hits = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "uops:"), 1u);
  stats.query_nodes_total = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "query-nodes:"), 1u);
  EXPECT_EQ(occurrences(report, "intern:"), 0u);
  stats.exprs_interned = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "intern:"), 1u);
  EXPECT_EQ(occurrences(report, "portfolio:"), 0u);
  stats.solver.portfolio_routed = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "portfolio:"), 1u);
  EXPECT_EQ(occurrences(report, "store:"), 0u);
  stats.store_misses = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "store:"), 1u);
  EXPECT_EQ(occurrences(report, "robust:"), 0u);
  stats.flips_skipped_unknown = 1;
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "robust:"), 1u);
  EXPECT_EQ(occurrences(report, "incomplete:"), 0u);
  stats.incomplete = true;
  stats.incomplete_reason = "wall-clock deadline";
  report = engine_stats_report(stats);
  EXPECT_EQ(occurrences(report, "incomplete: wall-clock deadline"), 1u);
}

TEST_F(StatsTest, TraceHookSeesEveryRetiredInstruction) {
  Program program = load(R"(
_start:
    li t0, 3
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
)");
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  std::vector<std::string> trace_lines;
  executor.set_trace_hook([&](uint32_t pc, const isa::Decoded& decoded) {
    trace_lines.push_back(isa::disassemble(decoded, pc));
  });
  PathTrace trace;
  executor.run(smt::Assignment{}, trace);
  EXPECT_EQ(trace_lines.size(), trace.steps);
  EXPECT_EQ(trace_lines[0], "addi t0, zero, 3");
  // The loop body appears three times.
  size_t bne_count = 0;
  for (const std::string& line : trace_lines)
    bne_count += line.find("bne") != std::string::npos;
  EXPECT_EQ(bne_count, 3u);
}

}  // namespace
}  // namespace binsym::core
