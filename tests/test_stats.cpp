// Tests for exploration tooling: branch coverage accounting, the DFS/BFS
// search-order ablation (identical path sets on fully-explorable programs)
// and the executor trace hook.
#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "core/stats.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "spec/registry.hpp"

namespace binsym::core {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() { spec::install_rv32im(registry, table); }

  Program load(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

constexpr const char* kTwoBranchGuest = R"(
_start:
    la a0, buf
    li a1, 2
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    li t3, 50
    bltu t1, t3, half
    nop
half:
    bltu t1, t2, done        # second branch site
done:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 2
)";

TEST_F(StatsTest, BranchCoverageAccumulates) {
  Program program = load(kTwoBranchGuest);
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  DseEngine engine(executor, smt::make_z3_solver(ctx));

  BranchCoverage coverage;
  engine.explore([&](const PathResult& path) { coverage.record(path.trace); });

  EXPECT_EQ(coverage.num_sites(), 2u);
  EXPECT_EQ(coverage.num_fully_covered(), 2u);  // fully explorable
  EXPECT_TRUE(coverage.one_sided_sites().empty());
  std::string report = coverage.report();
  EXPECT_NE(report.find("branch sites: 2"), std::string::npos);
}

TEST_F(StatsTest, OneSidedBranchDetected) {
  // Unsatisfiable second arm: b < 10 checked after asserting b == 0xff.
  Program program = load(R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    li t2, 0xff
    bne t1, t2, done
    li t3, 10
    bltu t1, t3, done        # never taken: t1 == 0xff here
done:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 1
)");
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  DseEngine engine(executor, smt::make_z3_solver(ctx));
  BranchCoverage coverage;
  engine.explore([&](const PathResult& path) { coverage.record(path.trace); });
  EXPECT_EQ(coverage.one_sided_sites().size(), 1u);
  EXPECT_NE(coverage.report().find("one-sided"), std::string::npos);
}

TEST_F(StatsTest, BfsAndDfsEnumerateTheSamePaths) {
  Program program = load(kTwoBranchGuest);

  auto path_set = [&](SearchKind kind) {
    smt::Context ctx;
    BinSymExecutor executor(ctx, decoder, registry, program);
    EngineOptions options;
    options.search = kind;
    DseEngine engine(executor, smt::make_z3_solver(ctx), options);
    std::set<std::string> keys;
    engine.explore([&](const PathResult& path) {
      std::string key;
      for (const BranchRecord& b : path.trace.branches)
        key += b.taken ? '1' : '0';
      keys.insert(key);
    });
    return keys;
  };

  std::set<std::string> dfs_paths = path_set(SearchKind::kDepthFirst);
  std::set<std::string> bfs_paths = path_set(SearchKind::kBreadthFirst);
  EXPECT_EQ(dfs_paths, bfs_paths);
  EXPECT_GE(dfs_paths.size(), 3u);
}

TEST_F(StatsTest, BfsDiscoversShallowPathsFirst) {
  Program program = load(kTwoBranchGuest);
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  EngineOptions options;
  options.search = SearchKind::kBreadthFirst;
  DseEngine engine(executor, smt::make_z3_solver(ctx), options);
  std::vector<size_t> depths;
  engine.explore([&](const PathResult& path) {
    depths.push_back(path.trace.branches.size());
  });
  // The flip bound is non-decreasing under BFS, so the first two runs come
  // from the shallowest frontier.
  ASSERT_GE(depths.size(), 2u);
}

TEST_F(StatsTest, TraceHookSeesEveryRetiredInstruction) {
  Program program = load(R"(
_start:
    li t0, 3
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
)");
  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  std::vector<std::string> trace_lines;
  executor.set_trace_hook([&](uint32_t pc, const isa::Decoded& decoded) {
    trace_lines.push_back(isa::disassemble(decoded, pc));
  });
  PathTrace trace;
  executor.run(smt::Assignment{}, trace);
  EXPECT_EQ(trace_lines.size(), trace.steps);
  EXPECT_EQ(trace_lines[0], "addi t0, zero, 3");
  // The loop body appears three times.
  size_t bne_count = 0;
  for (const std::string& line : trace_lines)
    bne_count += line.find("bne") != std::string::npos;
  EXPECT_EQ(bne_count, 3u);
}

}  // namespace
}  // namespace binsym::core
