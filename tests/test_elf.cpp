// ELF32 writer/reader tests: header correctness, segment round-trips,
// malformed-input rejection and program materialization.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "elf/elf32.hpp"

namespace binsym::elf {
namespace {

Image sample_image() {
  Image image;
  image.entry = 0x1000;
  image.segments.push_back(Segment{0x1000, {0x13, 0x00, 0x00, 0x00, 0x73}});
  image.segments.push_back(Segment{0x10000, {1, 2, 3}});
  return image;
}

TEST(Elf, HeaderFields) {
  std::vector<uint8_t> bytes = write_elf(sample_image());
  ASSERT_GE(bytes.size(), 52u);
  EXPECT_EQ(bytes[0], 0x7f);
  EXPECT_EQ(bytes[1], 'E');
  EXPECT_EQ(bytes[4], 1);  // ELFCLASS32
  EXPECT_EQ(bytes[5], 1);  // little-endian
  EXPECT_EQ(bytes[16] | (bytes[17] << 8), kEtExec);
  EXPECT_EQ(bytes[18] | (bytes[19] << 8), kEmRiscv);
}

TEST(Elf, RoundTrip) {
  Image original = sample_image();
  auto loaded = read_elf(write_elf(original));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entry, original.entry);
  ASSERT_EQ(loaded->segments.size(), original.segments.size());
  for (size_t i = 0; i < original.segments.size(); ++i) {
    EXPECT_EQ(loaded->segments[i].addr, original.segments[i].addr);
    EXPECT_EQ(loaded->segments[i].bytes, original.segments[i].bytes);
  }
}

TEST(Elf, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(read_elf({1, 2, 3}, &error).has_value());
  EXPECT_NE(error.find("short"), std::string::npos);

  std::vector<uint8_t> bytes = write_elf(sample_image());
  bytes[0] = 0;  // break magic
  EXPECT_FALSE(read_elf(bytes, &error).has_value());

  bytes = write_elf(sample_image());
  bytes[18] = 0x3e;  // EM_X86_64
  EXPECT_FALSE(read_elf(bytes, &error).has_value());
  EXPECT_NE(error.find("RISCV"), std::string::npos);

  bytes = write_elf(sample_image());
  bytes[4] = 2;  // ELFCLASS64
  EXPECT_FALSE(read_elf(bytes, &error).has_value());
}

TEST(Elf, RejectsTruncatedPayload) {
  std::vector<uint8_t> bytes = write_elf(sample_image());
  bytes.resize(bytes.size() - 4);
  std::string error;
  EXPECT_FALSE(read_elf(bytes, &error).has_value());
}

TEST(Elf, SegmentFlagsRoundTripToMemRegions) {
  // p_flags survive write -> read -> to_program: the per-segment RWX
  // metadata must land verbatim on the program's MemRegions (the static
  // analysis keys its code-vs-data sweeps off it).
  Image original = sample_image();
  original.segments[0].flags = kPfR | kPfX;   // text
  original.segments[1].flags = kPfR | kPfW;   // data
  auto loaded = read_elf(write_elf(original));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->segments.size(), 2u);
  EXPECT_EQ(loaded->segments[0].flags, kPfR | kPfX);
  EXPECT_EQ(loaded->segments[1].flags, kPfR | kPfW);

  core::Program program = to_program(*loaded);
  ASSERT_EQ(program.regions.size(), 2u);
  EXPECT_EQ(program.regions[0].flags,
            core::MemRegion::kRead | core::MemRegion::kExec);
  EXPECT_EQ(program.regions[1].flags,
            core::MemRegion::kRead | core::MemRegion::kWrite);
  // The ELF encoding and MemRegion share bit values by design.
  EXPECT_EQ(static_cast<uint32_t>(kPfX), core::MemRegion::kExec);
  EXPECT_EQ(static_cast<uint32_t>(kPfW), core::MemRegion::kWrite);
  EXPECT_EQ(static_cast<uint32_t>(kPfR), core::MemRegion::kRead);
}

TEST(Elf, ToProgramLoadsSegments) {
  core::Program program = to_program(sample_image());
  EXPECT_EQ(program.entry, 0x1000u);
  EXPECT_EQ(program.image.read(0x1000, 4), 0x13u);  // nop
  EXPECT_EQ(program.image.read8(0x10001), 2);
  EXPECT_TRUE(program.image.mapped(0x1000));
  EXPECT_FALSE(program.image.mapped(0x5000));
}

TEST(Elf, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/binsym_test.elf";
  ASSERT_TRUE(write_elf_file(path, sample_image()));
  auto loaded = read_elf_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entry, 0x1000u);
}

}  // namespace
}  // namespace binsym::elf
