// ELF32 writer/reader tests: header correctness, segment round-trips,
// malformed-input rejection and program materialization.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "elf/elf32.hpp"

namespace binsym::elf {
namespace {

Image sample_image() {
  Image image;
  image.entry = 0x1000;
  image.segments.push_back(Segment{0x1000, {0x13, 0x00, 0x00, 0x00, 0x73}});
  image.segments.push_back(Segment{0x10000, {1, 2, 3}});
  return image;
}

TEST(Elf, HeaderFields) {
  std::vector<uint8_t> bytes = write_elf(sample_image());
  ASSERT_GE(bytes.size(), 52u);
  EXPECT_EQ(bytes[0], 0x7f);
  EXPECT_EQ(bytes[1], 'E');
  EXPECT_EQ(bytes[4], 1);  // ELFCLASS32
  EXPECT_EQ(bytes[5], 1);  // little-endian
  EXPECT_EQ(bytes[16] | (bytes[17] << 8), kEtExec);
  EXPECT_EQ(bytes[18] | (bytes[19] << 8), kEmRiscv);
}

TEST(Elf, RoundTrip) {
  Image original = sample_image();
  auto loaded = read_elf(write_elf(original));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entry, original.entry);
  ASSERT_EQ(loaded->segments.size(), original.segments.size());
  for (size_t i = 0; i < original.segments.size(); ++i) {
    EXPECT_EQ(loaded->segments[i].addr, original.segments[i].addr);
    EXPECT_EQ(loaded->segments[i].bytes, original.segments[i].bytes);
  }
}

TEST(Elf, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(read_elf({1, 2, 3}, &error).has_value());
  EXPECT_NE(error.find("short"), std::string::npos);

  std::vector<uint8_t> bytes = write_elf(sample_image());
  bytes[0] = 0;  // break magic
  EXPECT_FALSE(read_elf(bytes, &error).has_value());

  bytes = write_elf(sample_image());
  bytes[18] = 0x3e;  // EM_X86_64
  EXPECT_FALSE(read_elf(bytes, &error).has_value());
  EXPECT_NE(error.find("RISCV"), std::string::npos);

  bytes = write_elf(sample_image());
  bytes[4] = 2;  // ELFCLASS64
  EXPECT_FALSE(read_elf(bytes, &error).has_value());
}

TEST(Elf, RejectsTruncatedPayload) {
  std::vector<uint8_t> bytes = write_elf(sample_image());
  bytes.resize(bytes.size() - 4);
  std::string error;
  EXPECT_FALSE(read_elf(bytes, &error).has_value());
}

// -- Malformed program-header hardening. -------------------------------------

uint32_t read32(const std::vector<uint8_t>& b, size_t off) {
  return static_cast<uint32_t>(b[off]) |
         (static_cast<uint32_t>(b[off + 1]) << 8) |
         (static_cast<uint32_t>(b[off + 2]) << 16) |
         (static_cast<uint32_t>(b[off + 3]) << 24);
}

void write32(std::vector<uint8_t>& b, size_t off, uint32_t v) {
  b[off] = static_cast<uint8_t>(v);
  b[off + 1] = static_cast<uint8_t>(v >> 8);
  b[off + 2] = static_cast<uint8_t>(v >> 16);
  b[off + 3] = static_cast<uint8_t>(v >> 24);
}

/// Byte offset of program header `index` in a serialized ELF.
size_t ph_offset(const std::vector<uint8_t>& b, size_t index) {
  uint32_t phoff = read32(b, 28);
  uint16_t phentsize = static_cast<uint16_t>(b[42] | (b[43] << 8));
  return static_cast<size_t>(phoff) + index * phentsize;
}

TEST(Elf, RejectsMemszSmallerThanFilesz) {
  std::vector<uint8_t> bytes = write_elf(sample_image());
  size_t ph = ph_offset(bytes, 0);
  uint32_t filesz = read32(bytes, ph + 16);
  ASSERT_GT(filesz, 0u);
  write32(bytes, ph + 20, filesz - 1);  // p_memsz below p_filesz
  std::string error;
  EXPECT_FALSE(read_elf(bytes, &error).has_value());
  EXPECT_NE(error.find("p_memsz"), std::string::npos) << error;
}

TEST(Elf, RejectsSegmentWrappingAddressSpace) {
  std::vector<uint8_t> bytes = write_elf(sample_image());
  size_t ph = ph_offset(bytes, 0);
  // First segment carries 5 bytes; an end past 2^32 must be refused, not
  // silently aliased onto low memory.
  write32(bytes, ph + 8, 0xfffffffcu);  // p_vaddr
  std::string error;
  EXPECT_FALSE(read_elf(bytes, &error).has_value());
  EXPECT_NE(error.find("wraps"), std::string::npos) << error;
}

TEST(Elf, ToProgramRejectsOverlappingSegments) {
  Image image;
  image.entry = 0x1000;
  image.segments.push_back(Segment{0x1000, {1, 2, 3, 4, 5, 6, 7, 8}});
  image.segments.push_back(Segment{0x1004, {9, 9}});  // inside the first
  try {
    to_program(image);
    FAIL() << "overlapping PT_LOADs must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("overlapping PT_LOAD"),
              std::string::npos)
        << e.what();
  }
}

TEST(Elf, SegmentFlagsRoundTripToMemRegions) {
  // p_flags survive write -> read -> to_program: the per-segment RWX
  // metadata must land verbatim on the program's MemRegions (the static
  // analysis keys its code-vs-data sweeps off it).
  Image original = sample_image();
  original.segments[0].flags = kPfR | kPfX;   // text
  original.segments[1].flags = kPfR | kPfW;   // data
  auto loaded = read_elf(write_elf(original));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->segments.size(), 2u);
  EXPECT_EQ(loaded->segments[0].flags, kPfR | kPfX);
  EXPECT_EQ(loaded->segments[1].flags, kPfR | kPfW);

  core::Program program = to_program(*loaded);
  ASSERT_EQ(program.regions.size(), 2u);
  EXPECT_EQ(program.regions[0].flags,
            core::MemRegion::kRead | core::MemRegion::kExec);
  EXPECT_EQ(program.regions[1].flags,
            core::MemRegion::kRead | core::MemRegion::kWrite);
  // The ELF encoding and MemRegion share bit values by design.
  EXPECT_EQ(static_cast<uint32_t>(kPfX), core::MemRegion::kExec);
  EXPECT_EQ(static_cast<uint32_t>(kPfW), core::MemRegion::kWrite);
  EXPECT_EQ(static_cast<uint32_t>(kPfR), core::MemRegion::kRead);
}

TEST(Elf, ToProgramLoadsSegments) {
  core::Program program = to_program(sample_image());
  EXPECT_EQ(program.entry, 0x1000u);
  EXPECT_EQ(program.image.read(0x1000, 4), 0x13u);  // nop
  EXPECT_EQ(program.image.read8(0x10001), 2);
  EXPECT_TRUE(program.image.mapped(0x1000));
  EXPECT_FALSE(program.image.mapped(0x5000));
}

TEST(Elf, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/binsym_test.elf";
  ASSERT_TRUE(write_elf_file(path, sample_image()));
  auto loaded = read_elf_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entry, 0x1000u);
}

}  // namespace
}  // namespace binsym::elf
