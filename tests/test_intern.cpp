// Differential tests for the hash-cons expression arena (smt/context.hpp).
//
// Two worlds, one random build stream: an interning Context and a legacy
// (fresh-node-per-call) Context driven in lockstep by the same RNG draws.
// The arena may only change representation, never meaning:
//   * widths and concrete evaluation agree at every build step,
//   * structural equality is pointer equality on the interning side,
//   * re-interning both worlds into a fresh arena converges to the same
//     node (builder folds re-fire bottom-up), simplify fixpoints included,
//   * SMT-LIB output parses back to the same node modulo let-sharing,
//   * the legacy allocator provably allocates more nodes than the arena.
// Plus the engine-level bar: across {intern on, off} x {dfs, coverage} x
// jobs {1, 4}, explored path sets and reported finding triples must be
// bit-identical on the Table I and buggy-corpus workloads.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "core/finding.hpp"
#include "core/stats.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "oracles/manager.hpp"
#include "smt/context.hpp"
#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "smt/simplify.hpp"
#include "smt/smtlib.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace binsym::smt {
namespace {

/// Rebuild expressions from `src` inside `dst` through dst's folding
/// builders, bottom-up. In an interning `dst` this is the canonicalizer the
/// differential tests compare through: structurally equal inputs (from
/// either mode) land on the same node, and pointer-equality folds that the
/// legacy allocator could not fire get a second chance.
class Reintern {
 public:
  Reintern(const Context& src, Context& dst) : src_(src), dst_(dst) {}

  ExprRef clone(ExprRef root) {
    postorder(root, marker_, [&](ExprRef n) { map_[n] = build(n); });
    return map_.at(root);
  }

 private:
  ExprRef build(ExprRef n) {
    auto op = [&](unsigned i) { return map_.at(n->ops[i]); };
    switch (n->kind) {
      case Kind::kConst: return dst_.constant(n->constant, n->width);
      case Kind::kVar: {
        const VarInfo& info = src_.var_info(n->var_id);
        return dst_.var(info.name, info.width);
      }
      case Kind::kNot: return dst_.not_(op(0));
      case Kind::kNeg: return dst_.neg(op(0));
      case Kind::kExtract: return dst_.extract(op(0), n->aux0, n->aux1);
      case Kind::kZExt: return dst_.zext(op(0), n->width);
      case Kind::kSExt: return dst_.sext(op(0), n->width);
      case Kind::kAdd: return dst_.add(op(0), op(1));
      case Kind::kSub: return dst_.sub(op(0), op(1));
      case Kind::kMul: return dst_.mul(op(0), op(1));
      case Kind::kUDiv: return dst_.udiv(op(0), op(1));
      case Kind::kURem: return dst_.urem(op(0), op(1));
      case Kind::kSDiv: return dst_.sdiv(op(0), op(1));
      case Kind::kSRem: return dst_.srem(op(0), op(1));
      case Kind::kAnd: return dst_.and_(op(0), op(1));
      case Kind::kOr: return dst_.or_(op(0), op(1));
      case Kind::kXor: return dst_.xor_(op(0), op(1));
      case Kind::kShl: return dst_.shl(op(0), op(1));
      case Kind::kLShr: return dst_.lshr(op(0), op(1));
      case Kind::kAShr: return dst_.ashr(op(0), op(1));
      case Kind::kEq: return dst_.eq(op(0), op(1));
      case Kind::kUlt: return dst_.ult(op(0), op(1));
      case Kind::kUle: return dst_.ule(op(0), op(1));
      case Kind::kSlt: return dst_.slt(op(0), op(1));
      case Kind::kSle: return dst_.sle(op(0), op(1));
      case Kind::kConcat: return dst_.concat(op(0), op(1));
      case Kind::kIte: return dst_.ite(op(0), op(1), op(2));
    }
    return nullptr;  // unreachable
  }

  const Context& src_;
  Context& dst_;
  NodeMarker marker_;
  std::unordered_map<ExprRef, ExprRef> map_;
};

/// DagGen's op mix (test_smt_property.cpp), mirrored onto two contexts:
/// every RNG draw is made once and applied to both pools, so step i builds
/// the *same* term in both worlds. The interning pool entry may be a
/// pointer-folded form of the legacy one (eq(a, a) folds only when the
/// operands are pointer-equal), which is exactly the divergence the
/// differential assertions are designed around.
class DualGen {
 public:
  DualGen(Context& interned, Context& legacy, Rng& rng, unsigned num_vars)
      : a_(interned), b_(legacy), rng_(rng) {
    for (unsigned i = 0; i < num_vars; ++i) {
      unsigned width = pick_width();
      std::string name = "v" + std::to_string(i);
      push(a_.var(name, width), b_.var(name, width));
    }
    uint64_t value = rng_.next();
    unsigned width = pick_width();
    push(a_.constant(value, width), b_.constant(value, width));
  }

  std::pair<ExprRef, ExprRef> step() {
    std::pair<ExprRef, ExprRef> pair = random_pair();
    push(pair.first, pair.second);
    return pair;
  }

  const std::vector<std::pair<ExprRef, ExprRef>>& pool() const {
    return pool_;
  }

 private:
  void push(ExprRef a, ExprRef b) {
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->width, b->width);
    pool_.emplace_back(a, b);
  }

  unsigned pick_width() {
    static const unsigned widths[] = {1, 8, 16, 32, 64};
    return widths[rng_.below(5)];
  }

  std::pair<ExprRef, ExprRef> pick() {
    return pool_[rng_.below(pool_.size())];
  }

  std::pair<ExprRef, ExprRef> pick_adapted(unsigned width) {
    auto [pa, pb] = pick();
    if (pa->width == width) return {pa, pb};
    if (pa->width < width) {
      bool zero = rng_.flip();
      return {zero ? a_.zext(pa, width) : a_.sext(pa, width),
              zero ? b_.zext(pb, width) : b_.sext(pb, width)};
    }
    return {a_.extract(pa, width - 1, 0), b_.extract(pb, width - 1, 0)};
  }

  static ExprRef apply(Context& ctx, Kind kind, ExprRef x, ExprRef y) {
    switch (kind) {
      case Kind::kAdd: return ctx.add(x, y);
      case Kind::kSub: return ctx.sub(x, y);
      case Kind::kMul: return ctx.mul(x, y);
      case Kind::kUDiv: return ctx.udiv(x, y);
      case Kind::kURem: return ctx.urem(x, y);
      case Kind::kSDiv: return ctx.sdiv(x, y);
      case Kind::kSRem: return ctx.srem(x, y);
      case Kind::kAnd: return ctx.and_(x, y);
      case Kind::kOr: return ctx.or_(x, y);
      case Kind::kXor: return ctx.xor_(x, y);
      case Kind::kShl: return ctx.shl(x, y);
      case Kind::kLShr: return ctx.lshr(x, y);
      case Kind::kAShr: return ctx.ashr(x, y);
      case Kind::kEq: return ctx.eq(x, y);
      case Kind::kUlt: return ctx.ult(x, y);
      case Kind::kUle: return ctx.ule(x, y);
      case Kind::kSlt: return ctx.slt(x, y);
      default: return ctx.sle(x, y);
    }
  }

  std::pair<ExprRef, ExprRef> random_pair() {
    switch (rng_.below(8)) {
      case 0: {  // unary
        auto [pa, pb] = pick();
        bool use_not = rng_.flip();
        return {use_not ? a_.not_(pa) : a_.neg(pa),
                use_not ? b_.not_(pb) : b_.neg(pb)};
      }
      case 1: {  // extract
        auto [pa, pb] = pick();
        unsigned hi = static_cast<unsigned>(rng_.below(pa->width));
        unsigned lo = static_cast<unsigned>(rng_.below(hi + 1));
        return {a_.extract(pa, hi, lo), b_.extract(pb, hi, lo)};
      }
      case 2: {  // extension
        auto [pa, pb] = pick();
        unsigned to =
            pa->width + static_cast<unsigned>(rng_.below(65 - pa->width));
        bool zero = rng_.flip();
        return {zero ? a_.zext(pa, to) : a_.sext(pa, to),
                zero ? b_.zext(pb, to) : b_.sext(pb, to)};
      }
      case 3: {  // ite
        auto [ca, cb] = pick_adapted(1);
        auto [ta, tb] = pick();
        auto [ea, eb] = pick_adapted(ta->width);
        return {a_.ite(ca, ta, ea), b_.ite(cb, tb, eb)};
      }
      case 4: {  // concat
        auto [ha, hb] = pick();
        auto [la, lb] = pick();
        if (ha->width + la->width > 64) return {a_.not_(ha), b_.not_(hb)};
        return {a_.concat(ha, la), b_.concat(hb, lb)};
      }
      default: {  // binary
        auto [pa, pb] = pick();
        auto [qa, qb] = pick_adapted(pa->width);
        static const Kind kinds[] = {Kind::kAdd, Kind::kSub, Kind::kMul,
                                     Kind::kUDiv, Kind::kURem, Kind::kSDiv,
                                     Kind::kSRem, Kind::kAnd, Kind::kOr,
                                     Kind::kXor, Kind::kShl, Kind::kLShr,
                                     Kind::kAShr, Kind::kEq, Kind::kUlt,
                                     Kind::kUle, Kind::kSlt, Kind::kSle};
        Kind kind = kinds[rng_.below(std::size(kinds))];
        return {apply(a_, kind, pa, qa), apply(b_, kind, pb, qb)};
      }
    }
  }

  Context& a_;
  Context& b_;
  Rng& rng_;
  std::vector<std::pair<ExprRef, ExprRef>> pool_;
};

Assignment random_assignment(Context& ctx, Rng& rng) {
  Assignment a;
  for (uint32_t id = 0; id < ctx.num_vars(); ++id)
    a.set(id, rng.next() & mask_bits(ctx.var_info(id).width));
  return a;
}

constexpr unsigned kStepsPerSeed = 2500;  // 4 seeds x 2500 ~ 10k expressions

class InternDifferential : public ::testing::TestWithParam<uint64_t> {};

// The core lockstep sweep: the legacy allocator and the arena build the
// same random stream; every step must agree on width and on concrete
// evaluation (var ids are allocated in the same order, so one Assignment
// serves both worlds), and the arena must come out strictly denser.
TEST_P(InternDifferential, EvaluationAgreesAtEveryStep) {
  Rng rng(GetParam());
  Context interned(/*intern_exprs=*/true);
  Context legacy(/*intern_exprs=*/false);
  ASSERT_TRUE(interned.interning());
  ASSERT_FALSE(legacy.interning());
  DualGen gen(interned, legacy, rng, 5);

  Rng model_rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  for (unsigned i = 0; i < kStepsPerSeed; ++i) {
    auto [a, b] = gen.step();
    ASSERT_EQ(a->width, b->width) << "step " << i;
    Assignment model = random_assignment(interned, model_rng);
    ASSERT_EQ(evaluate(a, model), evaluate(b, model))
        << "step " << i << " diverges between intern and legacy";
  }
  // The final expressions, hammered with more models.
  auto [a, b] = gen.pool().back();
  for (int i = 0; i < 32; ++i) {
    Assignment model = random_assignment(interned, model_rng);
    EXPECT_EQ(evaluate(a, model), evaluate(b, model)) << "model " << i;
  }

  // Sharing must be real: the legacy world allocated a fresh node per
  // builder call, the arena answered a good fraction from the table.
  EXPECT_GT(legacy.num_nodes(), interned.num_nodes());
  EXPECT_GT(interned.intern_hits(), 0u);
  EXPECT_EQ(legacy.intern_hits(), 0u);
  EXPECT_GT(interned.arena_bytes(), 0u);
  EXPECT_GT(legacy.arena_bytes(), 0u);
}

// Tentpole invariant: on the interning side, structural equality IS pointer
// equality. Checked two ways — hash groups must be singletons (two distinct
// nodes sharing a content hash would be either a intern-table bug or a
// 64-bit collision) and random pairs must agree with structurally_equal.
TEST_P(InternDifferential, StructuralEqualityIsPointerEquality) {
  Rng rng(GetParam());
  Context interned(/*intern_exprs=*/true);
  Context legacy(/*intern_exprs=*/false);
  DualGen gen(interned, legacy, rng, 5);
  for (unsigned i = 0; i < kStepsPerSeed / 4; ++i) gen.step();

  std::unordered_map<uint64_t, ExprRef> by_hash;
  for (const auto& [a, b] : gen.pool()) {
    auto [it, inserted] = by_hash.emplace(a->hash, a);
    if (!inserted) {
      EXPECT_EQ(it->second, a)
          << "two distinct interned nodes share content hash " << a->hash;
    }
  }
  Rng pair_rng(GetParam() ^ 0x517cc1b727220a95ull);
  const auto& pool = gen.pool();
  for (int i = 0; i < 512; ++i) {
    ExprRef x = pool[pair_rng.below(pool.size())].first;
    ExprRef y = pool[pair_rng.below(pool.size())].first;
    EXPECT_EQ(x == y, structurally_equal(x, y));
    // The legacy side keeps the full structural-compare contract instead.
    ExprRef lx = pool[pair_rng.below(pool.size())].second;
    EXPECT_TRUE(structurally_equal(lx, lx));
  }
}

// Canonical forms converge: re-interning both worlds into a fresh arena
// (folds re-fire bottom-up) must land on the same node — for the raw
// expressions, for their simplify fixpoints, and for their SMT-LIB text
// parsed back in (identical modulo let-sharing).
TEST_P(InternDifferential, CanonicalFormsConvergeAcrossModes) {
  Rng rng(GetParam());
  Context interned(/*intern_exprs=*/true);
  Context legacy(/*intern_exprs=*/false);
  DualGen gen(interned, legacy, rng, 5);
  for (unsigned i = 0; i < kStepsPerSeed / 4; ++i) gen.step();

  Context fresh(/*intern_exprs=*/true);
  Reintern from_interned(interned, fresh);
  Reintern from_legacy(legacy, fresh);
  // Declare the shared variables up front so parse_smtlib can resolve them.
  for (uint32_t id = 0; id < interned.num_vars(); ++id) {
    const VarInfo& info = interned.var_info(id);
    fresh.var(info.name, info.width);
  }

  Rng model_rng(GetParam() ^ 0x2545f4914f6cdd1dull);
  const auto& pool = gen.pool();
  for (size_t i = 0; i < pool.size(); i += 37) {
    auto [a, b] = pool[i];
    ExprRef ca = from_interned.clone(a);
    ExprRef cb = from_legacy.clone(b);
    ASSERT_EQ(ca, cb) << "re-interned forms diverge at pool index " << i;
    // Re-interning an arena's own node through its own builders is the
    // identity: the node already is the canonical form.
    Reintern self(interned, interned);
    EXPECT_EQ(self.clone(a), a) << "pool index " << i;

    // Simplify in each home world, then canonicalize: one fixpoint.
    ExprRef sa = simplify(interned, a);
    ExprRef sb = simplify(legacy, b);
    Assignment model = random_assignment(interned, model_rng);
    EXPECT_EQ(evaluate(sa, model), evaluate(a, model)) << "pool index " << i;
    EXPECT_EQ(evaluate(sb, model), evaluate(b, model)) << "pool index " << i;
    ExprRef csa = simplify(fresh, from_interned.clone(sa));
    ExprRef csb = simplify(fresh, from_legacy.clone(sb));
    EXPECT_EQ(csa, csb) << "simplify fixpoints diverge at pool index " << i;

    // SMT-LIB text: the legacy print may duplicate shared subtrees the
    // interned print lets — but parsed back into one arena both name the
    // same node. Parsing the interned print into its own context is the
    // exact round-trip.
    std::string error;
    ExprRef pa = parse_smtlib(fresh, to_smtlib(interned, a), &error);
    ASSERT_NE(pa, nullptr) << error << " at pool index " << i;
    ExprRef pb = parse_smtlib(fresh, to_smtlib(legacy, b), &error);
    ASSERT_NE(pb, nullptr) << error << " at pool index " << i;
    EXPECT_EQ(pa, pb) << "printed forms diverge at pool index " << i;
    EXPECT_EQ(pa, ca) << "print/parse is not the re-intern at index " << i;
    EXPECT_EQ(parse_smtlib(interned, to_smtlib(interned, a), &error), a)
        << "round-trip into the home arena at pool index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternDifferential,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace binsym::smt

// -- Engine level: stats plumbing and the bit-identity sweep. ----------------

namespace binsym {
namespace {

class InternEngineTest : public ::testing::Test {
 protected:
  InternEngineTest() {
    spec::install_rv32im(registry, table);
    spec::install_custom_madd(table, registry);
    spec::install_zbb(table, registry);
  }

  core::Program load_asm(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  core::WorkerFactory factory(const core::Program& program, bool intern,
                              const std::string& oracles_spec = "") {
    return [this, &program, intern, oracles_spec](unsigned) {
      core::WorkerResources r;
      r.ctx = std::make_unique<smt::Context>(intern);
      r.executor = std::make_unique<core::BinSymExecutor>(
          *r.ctx, decoder, registry, program, core::MachineConfig{});
      r.solver = smt::make_z3_solver(*r.ctx);
      if (!oracles_spec.empty()) {
        std::string error;
        auto manager = oracles::OracleManager::make(
            *r.ctx,
            oracles::MemoryMap::for_program(program,
                                            core::MachineConfig{}.stack_top),
            oracles_spec, &error);
        EXPECT_TRUE(manager) << error;
        r.executor->set_observer(manager.get());
        struct Keep {
          std::unique_ptr<oracles::OracleManager> manager;
        };
        auto keep = std::make_shared<Keep>();
        keep->manager = std::move(manager);
        r.keepalive = std::move(keep);
      }
      return r;
    };
  }

  struct Exploration {
    core::EngineStats stats;
    std::set<std::string> path_keys;
    std::multiset<uint32_t> failures;
  };

  Exploration explore(const core::Program& program, bool intern,
                      core::EngineOptions options) {
    options.intern_exprs = intern;
    core::DseEngine dse(factory(program, intern), options);
    Exploration result;
    result.stats = dse.explore([&](const core::PathResult& path) {
      std::string key;
      key.reserve(path.trace.branches.size());
      for (const core::BranchRecord& b : path.trace.branches)
        key += b.taken ? '1' : '0';
      result.path_keys.insert(key);
      for (const core::Failure& f : path.trace.failures)
        result.failures.insert(f.id);
    });
    return result;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

constexpr const char* kThreeBranchGuest = R"(
_start:
    la a0, buf
    li a1, 3
    li a7, 2
    ecall
    la s0, buf
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    lbu t2, 2(s0)
    bnez t0, skip1
    nop
skip1:
    bltu t1, t2, skip2
    nop
skip2:
    beqz t2, skip3
    nop
skip3:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 3
)";

TEST_F(InternEngineTest, StatsCollectArenaCounters) {
  core::Program program = load_asm(kThreeBranchGuest);
  Exploration on = explore(program, /*intern=*/true, {});
  EXPECT_GT(on.stats.exprs_interned, 0u);
  EXPECT_GT(on.stats.intern_hits, 0u);
  EXPECT_GT(on.stats.arena_bytes, 0u);
  std::string report = core::engine_stats_report(on.stats);
  EXPECT_NE(report.find("intern:"), std::string::npos) << report;

  Exploration off = explore(program, /*intern=*/false, {});
  EXPECT_GT(off.stats.exprs_interned, 0u);  // nodes still counted
  EXPECT_EQ(off.stats.intern_hits, 0u);     // but never answered from a table
  // The legacy allocator mints a fresh node per builder call, so it can
  // only allocate more.
  EXPECT_GE(off.stats.exprs_interned, on.stats.exprs_interned);
  EXPECT_EQ(off.path_keys, on.path_keys);
}

TEST_F(InternEngineTest, FindingTriplesIdenticalWithInternOnAndOff) {
  // Hash-consing must be invisible to bug finding: the (oracle, pc,
  // call-depth) triples reported over the buggy corpus must be
  // bit-identical no matter which allocator the worker contexts use.
  for (const char* name :
       {"buggy-div", "buggy-overflow", "buggy-unaligned", "buggy-stack-smash"}) {
    core::Program program = workloads::load_workload(table, name);
    auto campaign = [&](bool intern) {
      core::EngineOptions options;
      options.intern_exprs = intern;
      core::DseEngine dse(factory(program, intern, "all"), options);
      dse.explore();
      std::multiset<uint64_t> keys;
      for (const core::Finding& f : dse.findings())
        keys.insert(core::finding_key(f.oracle, f.pc, f.call_depth));
      return keys;
    };
    std::multiset<uint64_t> with_intern = campaign(true);
    EXPECT_FALSE(with_intern.empty()) << name;
    EXPECT_EQ(with_intern, campaign(false)) << name;
  }
}

// -- Table I bit-identity sweep. ---------------------------------------------
//
// The arena may only change representation and cost: across the intern
// toggle, search strategies and worker counts, the discovered path set and
// failures must be bit-identical. This is the acceptance bar of the
// subsystem. Excluded from the sanitizer CI jobs like the other
// full-workload determinism sweeps.

class InternWorkloadIdentity
    : public InternEngineTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(InternWorkloadIdentity, PathSetInvariantAcrossInternStrategiesJobs) {
  core::Program program = workloads::load_workload(table, GetParam());

  core::EngineOptions reference_options;  // intern on, dfs, one worker
  Exploration reference = explore(program, /*intern=*/true,
                                  reference_options);
  EXPECT_GT(reference.stats.paths, 100u);
  EXPECT_EQ(reference.stats.paths, reference.path_keys.size());
  EXPECT_GT(reference.stats.intern_hits, 0u);

  for (bool intern : {true, false}) {
    for (core::SearchKind kind :
         {core::SearchKind::kDepthFirst, core::SearchKind::kCoverageGuided}) {
      for (unsigned jobs : {1u, 4u}) {
        if (intern && kind == core::SearchKind::kDepthFirst && jobs == 1)
          continue;  // the reference configuration
        core::EngineOptions options;
        options.search = kind;
        options.jobs = jobs;
        Exploration run = explore(program, intern, options);
        std::string label = std::string(intern ? "intern" : "legacy") + " " +
                            core::search_kind_name(kind) +
                            " jobs=" + std::to_string(jobs);
        EXPECT_EQ(run.stats.paths, reference.stats.paths) << label;
        EXPECT_EQ(run.path_keys, reference.path_keys) << label;
        EXPECT_EQ(run.failures, reference.failures) << label;
        if (intern) {
          EXPECT_GT(run.stats.intern_hits, 0u) << label;
        } else {
          EXPECT_EQ(run.stats.intern_hits, 0u) << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, InternWorkloadIdentity,
                         ::testing::Values("base64-encode", "bubble-sort",
                                           "clif-parser", "insertion-sort",
                                           "uri-parser"));

}  // namespace
}  // namespace binsym
