// Tests for constraint-independence slicing: the union-find partition
// (single group, disjoint groups, assumption-linked groups), slice contents,
// model restriction and the engine-level invariant — sliced and unsliced
// exploration produce identical path sets and identical Table I counts.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/engine.hpp"
#include "core/executor.hpp"
#include "isa/decoder.hpp"
#include "smt/cache.hpp"
#include "smt/slice.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

using smt::Context;
using smt::ExprRef;

// -- Union-find partition. ----------------------------------------------------

class SliceTest : public ::testing::Test {
 protected:
  Context ctx;
  ExprRef a = ctx.var("a", 8);
  ExprRef b = ctx.var("b", 8);
  ExprRef c = ctx.var("c", 8);
  ExprRef d = ctx.var("d", 8);

  ExprRef lt(ExprRef x, uint64_t k) { return ctx.ult(x, ctx.constant(k, 8)); }
  ExprRef link(ExprRef x, ExprRef y) { return ctx.eq(x, y); }
};

TEST_F(SliceTest, SingleGroupWhenAllConstraintsShareVariables) {
  // a-b, b-c, c-d: one chain, one group.
  std::vector<ExprRef> constraints = {link(a, b), link(b, c), link(c, d)};
  std::vector<size_t> groups = smt::independence_groups(constraints);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[1], groups[2]);
}

TEST_F(SliceTest, DisjointConstraintsFormDisjointGroups) {
  std::vector<ExprRef> constraints = {lt(a, 10), lt(b, 20), link(c, d)};
  std::vector<size_t> groups = smt::independence_groups(constraints);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_NE(groups[0], groups[1]);
  EXPECT_NE(groups[0], groups[2]);
  EXPECT_NE(groups[1], groups[2]);
}

TEST_F(SliceTest, AssumptionLinkedGroupsMerge) {
  // {a}, {b} are independent until an assumption-style constraint mentions
  // both (the address-concretization pattern: one expression bridging two
  // otherwise unrelated constraint groups).
  std::vector<ExprRef> constraints = {lt(a, 10), lt(b, 20)};
  EXPECT_NE(smt::independence_groups(constraints)[0],
            smt::independence_groups(constraints)[1]);
  constraints.push_back(ctx.eq(ctx.add(a, b), ctx.constant(5, 8)));
  std::vector<size_t> groups = smt::independence_groups(constraints);
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[1], groups[2]);
}

TEST_F(SliceTest, ConstantConstraintsAreSingletons) {
  std::vector<ExprRef> constraints = {lt(a, 10), ctx.bool_const(false),
                                      ctx.bool_const(false)};
  std::vector<size_t> groups = smt::independence_groups(constraints);
  EXPECT_NE(groups[0], groups[1]);
  EXPECT_NE(groups[1], groups[2]);  // each constant is its own group
}

// -- slice(): what is kept, what is dropped. ----------------------------------

TEST_F(SliceTest, SliceKeepsOnlyTheTargetComponent) {
  std::vector<ExprRef> prefix = {lt(a, 10), lt(b, 20), link(b, c), lt(d, 30)};
  ExprRef target = ctx.ugt(c, ctx.constant(1, 8));
  smt::QuerySlicer slicer;
  smt::QuerySlicer::Result result = slicer.slice(prefix, target);

  // Reaches b-c and transitively lt(b, 20); drops the a and d groups.
  EXPECT_EQ(result.dropped, 2u);
  ASSERT_EQ(result.query.size(), 3u);
  EXPECT_EQ(result.query[0], prefix[1]);
  EXPECT_EQ(result.query[1], prefix[2]);
  EXPECT_EQ(result.query.back(), target);
  EXPECT_EQ(result.vars,
            (std::vector<uint32_t>{b->var_id, c->var_id}));
}

TEST_F(SliceTest, SliceIsStableUnderRepeatedCallsAndMemoization) {
  std::vector<ExprRef> prefix = {lt(a, 10), link(a, b), lt(c, 5)};
  ExprRef target = ctx.ugt(b, ctx.constant(2, 8));
  smt::QuerySlicer slicer;
  smt::QuerySlicer::Result first = slicer.slice(prefix, target);
  smt::QuerySlicer::Result second = slicer.slice(prefix, target);
  EXPECT_EQ(first.query, second.query);
  EXPECT_EQ(first.vars, second.vars);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.dropped, 1u);
}

TEST_F(SliceTest, UnsatisfiableConstantSurvivesTheSlice) {
  // Dropping a constant-false constraint would turn unsat into sat.
  std::vector<ExprRef> prefix = {ctx.bool_const(false), lt(a, 10)};
  ExprRef target = ctx.ugt(b, ctx.constant(2, 8));
  smt::QuerySlicer slicer;
  smt::QuerySlicer::Result result = slicer.slice(prefix, target);
  ASSERT_EQ(result.query.size(), 2u);
  EXPECT_TRUE(result.query[0]->is_false());
  EXPECT_EQ(result.dropped, 1u);  // only the unrelated a-constraint
}

TEST_F(SliceTest, TrueConstantIsDropped) {
  std::vector<ExprRef> prefix = {ctx.bool_const(true), lt(a, 10)};
  ExprRef target = ctx.ugt(a, ctx.constant(2, 8));
  smt::QuerySlicer slicer;
  smt::QuerySlicer::Result result = slicer.slice(prefix, target);
  ASSERT_EQ(result.query.size(), 2u);
  EXPECT_EQ(result.query[0], prefix[1]);
}

TEST_F(SliceTest, RestrictToVarsDropsForeignAssignments) {
  smt::Assignment model;
  model.set(a->var_id, 1);
  model.set(b->var_id, 2);
  model.set(c->var_id, 3);
  smt::restrict_to_vars(&model, {a->var_id, c->var_id});
  EXPECT_EQ(model.values.size(), 2u);
  EXPECT_EQ(model.get(a->var_id), 1u);
  EXPECT_EQ(model.get(c->var_id), 3u);
  EXPECT_EQ(model.values.count(b->var_id), 0u);
}

TEST_F(SliceTest, SlicedModelMergedWithParentSeedSatisfiesFullQuery) {
  // The engine's soundness argument, pinned: the parent seed satisfies the
  // sliced-out group, the solver model (restricted to the sliced vars)
  // satisfies the sliced group, and the merge satisfies the conjunction.
  std::vector<ExprRef> prefix = {link(a, b), lt(c, 10)};
  ExprRef target = ctx.eq(ctx.add(c, ctx.constant(1, 8)), ctx.constant(5, 8));
  smt::QuerySlicer slicer;
  smt::QuerySlicer::Result sliced = slicer.slice(prefix, target);
  EXPECT_EQ(sliced.dropped, 1u);  // a == b is not connected to c

  auto solver = smt::make_z3_solver(ctx);
  smt::Assignment model;
  ASSERT_EQ(solver->check(sliced.query, &model), smt::CheckResult::kSat);
  smt::restrict_to_vars(&model, sliced.vars);

  smt::Assignment parent;  // satisfies the full prefix: a == b == 7, c == 3
  parent.set(a->var_id, 7);
  parent.set(b->var_id, 7);
  parent.set(c->var_id, 3);
  smt::Assignment merged = parent;
  for (const auto& [var, value] : model.values) merged.set(var, value);

  for (ExprRef constraint : prefix)
    EXPECT_EQ(smt::evaluate(constraint, merged), 1u);
  EXPECT_EQ(smt::evaluate(target, merged), 1u);
}

TEST_F(SliceTest, FlipQueryReferenceConstructionSlicesLikeTheEngine) {
  // core::flip_query is the reference (stateless) construction of a flip
  // query; the engine builds the same conjunction incrementally. Pin the
  // windowing — branches [0, i) as taken, assumptions with
  // branch_index <= i, negated branch last — and that slicing its prefix
  // drops exactly the variable-disjoint groups.
  core::PathTrace trace;
  trace.branches.push_back({lt(a, 10), true, 0x10});
  trace.branches.push_back({lt(b, 20), false, 0x14});
  trace.branches.push_back({lt(c, 30), true, 0x18});
  trace.assumptions.push_back({1, link(c, d)});  // holds from flip index 1 on
  trace.assumptions.push_back({3, lt(d, 40)});   // beyond the last flip point

  std::vector<ExprRef> query = core::flip_query(ctx, trace, 2);
  // branches 0 (as taken) and 1 (as not-taken), assumption at index 1,
  // negated branch 2.
  ASSERT_EQ(query.size(), 4u);
  EXPECT_EQ(query[0], lt(a, 10));
  EXPECT_EQ(query[1], ctx.not_(lt(b, 20)));
  EXPECT_EQ(query[2], link(c, d));
  EXPECT_EQ(query.back(), ctx.not_(lt(c, 30)));

  smt::QuerySlicer slicer;
  smt::QuerySlicer::Result sliced = slicer.slice(
      std::span<const ExprRef>(query.data(), query.size() - 1), query.back());
  // The negated branch is over c; the assumption links c-d; a and b drop.
  EXPECT_EQ(sliced.dropped, 2u);
  EXPECT_EQ(sliced.query,
            (std::vector<ExprRef>{link(c, d), ctx.not_(lt(c, 30))}));
}

TEST_F(SliceTest, SlicedCacheKeysCollapseSiblingFlipsInBothInternModes) {
  // Sibling flips whose prefixes differ only in a variable-disjoint group
  // slice down to the same effective query, so their cache keys coincide.
  // The keys are structural content hashes, so the collapse is identical
  // with the expression arena interning and with the legacy allocator —
  // even though the legacy world builds the shared constraint as two
  // distinct nodes.
  smt::QueryCache::Key keys[2];
  int mode = 0;
  for (bool intern : {true, false}) {
    Context c(intern);
    ExprRef x = c.var("x", 8);
    ExprRef y = c.var("y", 8);
    ExprRef z = c.var("z", 8);
    auto lt8 = [&](ExprRef v, uint64_t k) {
      return c.ult(v, c.constant(k, 8));
    };
    std::vector<ExprRef> taken = {lt8(x, 10), lt8(y, 20)};
    std::vector<ExprRef> flipped = {c.not_(lt8(x, 10)), lt8(y, 20)};
    ExprRef target = c.eq(z, y);
    smt::QuerySlicer slicer;
    smt::QuerySlicer::Result r1 = slicer.slice(taken, target);
    smt::QuerySlicer::Result r2 = slicer.slice(flipped, target);
    EXPECT_EQ(r1.dropped, 1u);
    EXPECT_EQ(r2.dropped, 1u);
    smt::QueryCache::Key key = smt::QueryCache::key_for(r1.query);
    EXPECT_EQ(key, smt::QueryCache::key_for(r2.query))
        << (intern ? "intern" : "legacy")
        << ": sibling flips did not collapse onto one key";
    keys[mode++] = key;
  }
  EXPECT_EQ(keys[0], keys[1]) << "cache keys drift across the intern toggle";
}

// -- End-to-end: sliced and unsliced exploration are indistinguishable. -------

class SliceDeterminism : public ::testing::TestWithParam<const char*> {
 protected:
  SliceDeterminism() { spec::install_rv32im(registry, table); }

  struct Exploration {
    uint64_t paths = 0;
    std::set<std::string> path_keys;
  };

  Exploration explore(const core::Program& program,
                      const core::EngineOptions& options) {
    core::WorkerFactory factory = [this, &program](unsigned) {
      core::WorkerResources r;
      r.ctx = std::make_unique<smt::Context>();
      r.executor = std::make_unique<core::BinSymExecutor>(*r.ctx, decoder,
                                                          registry, program);
      r.solver = smt::make_z3_solver(*r.ctx);
      return r;
    };
    core::DseEngine engine(std::move(factory), options);
    Exploration result;
    core::EngineStats stats =
        engine.explore([&](const core::PathResult& path) {
          std::string key;
          key.reserve(path.trace.branches.size());
          for (const core::BranchRecord& b : path.trace.branches)
            key += b.taken ? '1' : '0';
          EXPECT_TRUE(result.path_keys.insert(key).second)
              << "path " << key << " enumerated twice";
        });
    result.paths = stats.paths;
    return result;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

TEST_P(SliceDeterminism, PathSetInvariantUnderSolverOptimizations) {
  core::Program program = workloads::load_workload(table, GetParam());
  uint64_t expected = 0;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads())
    if (info.name == GetParam()) expected = info.paper_paths;

  core::EngineOptions baseline;
  baseline.incremental_solving = false;
  baseline.slice_queries = false;
  baseline.presolve_models = false;
  Exploration reference = explore(program, baseline);
  EXPECT_EQ(reference.paths, expected) << "Table I count (all opts off)";
  EXPECT_EQ(reference.paths, reference.path_keys.size());

  struct Config {
    const char* name;
    bool incremental, slice, presolve;
    unsigned jobs;
    bool cache = true;
  };
  const Config configs[] = {
      {"slice only", false, true, false, 1},
      {"incremental only", true, false, false, 1},
      {"presolve only", false, false, true, 1},
      // Without the cache in front, the model-reuse pre-check answers
      // thousands of flips itself — the heaviest exercise of the pooled
      // models' soundness (verdict must match the scheduled seed).
      {"presolve only, no cache", false, false, true, 1, false},
      {"slice+presolve, no cache", false, true, true, 1, false},
      {"all on", true, true, true, 1},
      {"all on, 4 jobs", true, true, true, 4},
  };
  for (const Config& config : configs) {
    core::EngineOptions options;
    options.incremental_solving = config.incremental;
    options.slice_queries = config.slice;
    options.presolve_models = config.presolve;
    options.jobs = config.jobs;
    options.cache_queries = config.cache;
    Exploration run = explore(program, options);
    EXPECT_EQ(run.paths, reference.paths) << config.name;
    EXPECT_EQ(run.path_keys, reference.path_keys) << config.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, SliceDeterminism,
                         ::testing::Values("base64-encode", "bubble-sort",
                                           "clif-parser", "insertion-sort",
                                           "uri-parser"));

}  // namespace
}  // namespace binsym
