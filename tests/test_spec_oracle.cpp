// Differential validation of the formal RV32IM spec against an independent
// golden model (tests/oracle/rv32_oracle.hpp), over randomized register
// states, immediates and memory contents.
//
// This is the methodology that uncovered the five angr bugs (paper
// Sect. V-A), applied to our own spec: every instruction is executed by
// (a) the DSL concrete interpreter and (b) the hand-written oracle, and the
// complete post-state (registers, pc, touched memory) must agree.
#include <gtest/gtest.h>

#include "interp/concrete.hpp"
#include "oracle/rv32_oracle.hpp"
#include "support/rng.hpp"

namespace binsym {
namespace {

constexpr uint32_t kPc = 0x4000;
constexpr uint32_t kBufBase = 0x1000;
constexpr uint32_t kBufSize = 256;

class SpecOracleTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SpecOracleTest() { spec::install_rv32im(registry, table); }

  /// Build a random word for `info`, with memory operands redirected into
  /// the shared buffer.
  uint32_t random_word(const isa::OpcodeInfo& info, Rng& rng) {
    uint32_t word = info.match | (rng.next32() & ~info.mask);
    if (info.format == isa::Format::kI &&
        (info.id == isa::kLB || info.id == isa::kLH || info.id == isa::kLW ||
         info.id == isa::kLBU || info.id == isa::kLHU)) {
      // Clamp the offset to +-~120 so rs1=mid-buffer stays inside.
      word &= 0x000fffff;
      word |= (rng.next32() & 0x7f) << 20;  // imm in [0,127]
      word |= info.match;
    }
    if (info.format == isa::Format::kS) {
      uint32_t imm = rng.next32() & 0x7f;
      word = isa::encode_s(info.match & 0x7f, (info.match >> 12) & 7,
                           isa::rs1(word), isa::rs2(word), imm);
    }
    return word;
  }

  bool is_mem_op(isa::OpcodeId id) {
    switch (id) {
      case isa::kLB: case isa::kLH: case isa::kLW: case isa::kLBU:
      case isa::kLHU: case isa::kSB: case isa::kSH: case isa::kSW:
        return true;
      default:
        return false;
    }
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
  // Oracle-side memory overlay: oracle stores land here so both sides
  // start from the same pristine image and can be compared afterwards.
  std::unordered_map<uint32_t, uint8_t> iss_shadow_;
};

TEST_P(SpecOracleTest, ConcreteInterpreterMatchesOracle) {
  Rng rng(GetParam());

  for (const isa::OpcodeInfo& info : table.entries()) {
    // The oracle covers RV32IM; CSR/system state is engine-defined.
    if (info.format == isa::Format::kCsr ||
        info.id == isa::kECALL || info.id == isa::kEBREAK ||
        info.id == isa::kMRET || info.id == isa::kWFI)
      continue;

    for (int iteration = 0; iteration < 60; ++iteration) {
      uint32_t word = random_word(info, rng);
      auto decoded = decoder.decode(word);
      ASSERT_TRUE(decoded.has_value()) << info.name;
      if (decoded->info->id != info.id) continue;  // operand bits hit another encoding

      // Identical random start states for both sides.
      interp::Iss iss(decoder, registry);
      oracle::OracleState oracle_state;
      for (unsigned r = 1; r < 32; ++r) {
        uint32_t value = rng.next32();
        // Some interesting corners with higher probability.
        switch (rng.below(8)) {
          case 0: value = 0; break;
          case 1: value = 0xffffffffu; break;
          case 2: value = 0x80000000u; break;
          default: break;
        }
        iss.machine().regs_[r] = interp::cval(value, 32);
        oracle_state.regs[r] = value;
      }
      if (is_mem_op(info.id) && decoded->rs1() != 0) {
        uint32_t base = kBufBase + 64 + (rng.next32() & 63);
        iss.machine().regs_[decoded->rs1()] = interp::cval(base, 32);
        oracle_state.regs[decoded->rs1()] = base;
      }
      iss.machine().pc_ = kPc;
      oracle_state.pc = kPc;

      for (uint32_t i = 0; i < kBufSize; ++i) {
        uint8_t byte = static_cast<uint8_t>(rng.next());
        iss.machine().memory_.write8(kBufBase + i, byte);
      }
      oracle_state.load8 = [&](uint32_t addr) {
        return iss_shadow_.count(addr) ? iss_shadow_[addr]
                                       : static_cast<uint8_t>(
                                             iss.machine().memory_.read8(addr));
      };
      oracle_state.store8 = [&](uint32_t addr, uint8_t v) {
        iss_shadow_[addr] = v;
      };
      iss_shadow_.clear();

      // Oracle first (it reads the ISS memory as the pristine image).
      ASSERT_TRUE(oracle_step(oracle_state, *decoded)) << info.name;
      iss.execute_one(*decoded);

      for (unsigned r = 0; r < 32; ++r) {
        EXPECT_EQ(iss.machine().regs_[r].v, oracle_state.reg(r))
            << info.name << " x" << r << " word=0x" << std::hex << word;
      }
      EXPECT_EQ(iss.machine().pc_, oracle_state.pc)
          << info.name << " word=0x" << std::hex << word;
      for (const auto& [addr, value] : iss_shadow_) {
        EXPECT_EQ(iss.machine().memory_.read8(addr), value)
            << info.name << " mem[0x" << std::hex << addr << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecOracleTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace binsym
