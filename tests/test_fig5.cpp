// Reproduces the paper's Fig. 5 experiment as a test: the parse-word
// program yields one real assertion violation (id 6, found by BinSym with
// e.g. an odd x != 1) and no spurious one; under angr lifter bug #4 the
// engine instead reports the id-4 failure (false positive) and misses the
// id-6 one (false negative).
#include <gtest/gtest.h>

#include <map>

#include "baseline/ir_exec.hpp"
#include "core/engine.hpp"
#include "isa/decoder.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

class Fig5Test : public ::testing::Test {
 protected:
  Fig5Test() {
    spec::install_rv32im(registry, table);
    program = workloads::load_workload(table, "parse-word");
  }

  /// Explore and return failure-id -> (count, one witness input word).
  std::map<uint32_t, std::pair<int, uint32_t>> failures(
      core::Executor& executor, smt::Context& ctx) {
    std::map<uint32_t, std::pair<int, uint32_t>> out;
    core::DseEngine engine(executor, smt::make_z3_solver(ctx));
    engine.explore([&](const core::PathResult& path) {
      for (const core::Failure& f : path.trace.failures) {
        uint32_t x = 0;
        for (unsigned i = 0; i < path.trace.input_vars.size() && i < 4; ++i)
          x |= static_cast<uint32_t>(
                   path.seed.get(path.trace.input_vars[i]) & 0xff)
               << (8 * i);
        auto& entry = out[f.id];
        ++entry.first;
        entry.second = x;
      }
    });
    return out;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
  core::Program program;
};

TEST_F(Fig5Test, BinSymFindsTheRealViolationOnly) {
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  auto found = failures(executor, ctx);
  // No false positive on the x==1 arm.
  EXPECT_EQ(found.count(4), 0u)
      << "spurious assertion failure on the x==1 path";
  // The x!=1 arm's assert is genuinely violable (any odd x != 1).
  ASSERT_EQ(found.count(6), 1u) << "missed the real violation";
  uint32_t witness = found[6].second;
  EXPECT_EQ(witness & 1u, 1u) << "witness must have bit 0 set";
  EXPECT_NE(witness, 1u);
}

TEST_F(Fig5Test, CorrectLifterAgreesWithBinSym) {
  baseline::Lifter fixed(baseline::LifterBugs::none());
  smt::Context ctx;
  baseline::IrExecutor executor(ctx, decoder, fixed, program);
  auto found = failures(executor, ctx);
  EXPECT_EQ(found.count(4), 0u);
  EXPECT_EQ(found.count(6), 1u);
}

TEST_F(Fig5Test, Bug4CausesFalsePositiveAndFalseNegative) {
  baseline::LifterBugs bugs;
  bugs.itype_shamt_signed = true;  // the bug the paper demonstrates
  baseline::Lifter buggy(bugs);
  smt::Context ctx;
  baseline::BoxedIrExecutor executor(ctx, decoder, buggy, program);
  auto found = failures(executor, ctx);
  // False positive: the x==1 assert "fails" because x<<31 became x<<-1 == 0.
  ASSERT_EQ(found.count(4), 1u) << "expected the paper's false positive";
  EXPECT_EQ(found[4].second, 1u) << "false positive must be on x == 1";
  // False negative: the real violation is never found.
  EXPECT_EQ(found.count(6), 0u) << "bug #4 should hide the real violation";
}

}  // namespace
}  // namespace binsym
