// Property tests over random expression DAGs:
//   * the simplifier preserves concrete evaluation,
//   * simplification is idempotent,
//   * builder folding agrees with the evaluator,
//   * Z3 agrees with the concrete evaluator on forced-value queries,
//   * interning is idempotent and content hashes are context-independent,
//   * CachingEvaluator memos never alias distinct structures,
//   * persistent-store keys are stable across contexts, the intern toggle
//     and simulated restarts,
//   * a portfolio is observationally an smt::Solver (stateless and scoped).
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "smt/cache.hpp"
#include "smt/context.hpp"
#include "smt/eval.hpp"
#include "smt/portfolio.hpp"
#include "smt/simplify.hpp"
#include "smt/solver.hpp"
#include "smt/store.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"

namespace binsym::smt {
namespace {

/// Random DAG generator: a pool of nodes, each new node drawing operands
/// from the pool (producing shared sub-DAGs, not just trees).
class DagGen {
 public:
  DagGen(Context& ctx, Rng& rng, unsigned num_vars) : ctx_(ctx), rng_(rng) {
    for (unsigned i = 0; i < num_vars; ++i) {
      unsigned width = pick_width();
      pool_.push_back(ctx_.var("v" + std::to_string(i), width));
    }
    pool_.push_back(ctx_.constant(rng_.next(), pick_width()));
  }

  ExprRef grow(unsigned steps) {
    for (unsigned i = 0; i < steps; ++i) pool_.push_back(random_node());
    return pool_.back();
  }

 private:
  unsigned pick_width() {
    static const unsigned widths[] = {1, 8, 16, 32, 64};
    return widths[rng_.below(5)];
  }

  ExprRef pick() { return pool_[rng_.below(pool_.size())]; }

  /// Choose an operand of a given width, adapting one from the pool.
  ExprRef pick_width_adapted(unsigned width) {
    ExprRef e = pick();
    if (e->width == width) return e;
    if (e->width < width) return rng_.flip() ? ctx_.zext(e, width) : ctx_.sext(e, width);
    return ctx_.extract(e, width - 1, 0);
  }

  ExprRef random_node() {
    switch (rng_.below(8)) {
      case 0: {  // unary
        ExprRef a = pick();
        return rng_.flip() ? ctx_.not_(a) : ctx_.neg(a);
      }
      case 1: {  // extract
        ExprRef a = pick();
        unsigned hi = static_cast<unsigned>(rng_.below(a->width));
        unsigned lo = static_cast<unsigned>(rng_.below(hi + 1));
        return ctx_.extract(a, hi, lo);
      }
      case 2: {  // extension
        ExprRef a = pick();
        unsigned to = a->width + static_cast<unsigned>(rng_.below(65 - a->width));
        return rng_.flip() ? ctx_.zext(a, to) : ctx_.sext(a, to);
      }
      case 3: {  // ite
        ExprRef c = pick_width_adapted(1);
        ExprRef a = pick();
        ExprRef b = pick_width_adapted(a->width);
        return ctx_.ite(c, a, b);
      }
      case 4: {  // concat
        ExprRef a = pick(), b = pick();
        if (a->width + b->width > 64) return ctx_.not_(a);
        return ctx_.concat(a, b);
      }
      default: {  // binary
        ExprRef a = pick();
        ExprRef b = pick_width_adapted(a->width);
        static const Kind kinds[] = {Kind::kAdd, Kind::kSub, Kind::kMul,
                                     Kind::kUDiv, Kind::kURem, Kind::kSDiv,
                                     Kind::kSRem, Kind::kAnd, Kind::kOr,
                                     Kind::kXor, Kind::kShl, Kind::kLShr,
                                     Kind::kAShr, Kind::kEq, Kind::kUlt,
                                     Kind::kUle, Kind::kSlt, Kind::kSle};
        Kind kind = kinds[rng_.below(std::size(kinds))];
        switch (kind) {
          case Kind::kAdd: return ctx_.add(a, b);
          case Kind::kSub: return ctx_.sub(a, b);
          case Kind::kMul: return ctx_.mul(a, b);
          case Kind::kUDiv: return ctx_.udiv(a, b);
          case Kind::kURem: return ctx_.urem(a, b);
          case Kind::kSDiv: return ctx_.sdiv(a, b);
          case Kind::kSRem: return ctx_.srem(a, b);
          case Kind::kAnd: return ctx_.and_(a, b);
          case Kind::kOr: return ctx_.or_(a, b);
          case Kind::kXor: return ctx_.xor_(a, b);
          case Kind::kShl: return ctx_.shl(a, b);
          case Kind::kLShr: return ctx_.lshr(a, b);
          case Kind::kAShr: return ctx_.ashr(a, b);
          case Kind::kEq: return ctx_.eq(a, b);
          case Kind::kUlt: return ctx_.ult(a, b);
          case Kind::kUle: return ctx_.ule(a, b);
          case Kind::kSlt: return ctx_.slt(a, b);
          default: return ctx_.sle(a, b);
        }
      }
    }
  }

  Context& ctx_;
  Rng& rng_;
  std::vector<ExprRef> pool_;
};

Assignment random_assignment(Context& ctx, Rng& rng) {
  Assignment a;
  for (uint32_t id = 0; id < ctx.num_vars(); ++id)
    a.set(id, rng.next() & mask_bits(ctx.var_info(id).width));
  return a;
}

class SmtProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmtProperty, SimplifyPreservesEvaluation) {
  Rng rng(GetParam());
  Context ctx;
  DagGen gen(ctx, rng, 4);
  ExprRef root = gen.grow(60);
  ExprRef simplified = simplify(ctx, root);
  EXPECT_EQ(simplified->width, root->width);
  for (int i = 0; i < 16; ++i) {
    Assignment a = random_assignment(ctx, rng);
    EXPECT_EQ(evaluate(root, a), evaluate(simplified, a))
        << "assignment " << i << " diverges after simplify";
  }
}

TEST_P(SmtProperty, SimplifyIsIdempotent) {
  Rng rng(GetParam() ^ 0xabcdef);
  Context ctx;
  DagGen gen(ctx, rng, 3);
  ExprRef root = gen.grow(40);
  ExprRef once = simplify(ctx, root);
  EXPECT_EQ(simplify(ctx, once), once);
}

TEST_P(SmtProperty, SimplifyNeverGrows) {
  Rng rng(GetParam() ^ 0x777);
  Context ctx;
  DagGen gen(ctx, rng, 4);
  ExprRef root = gen.grow(50);
  EXPECT_LE(node_count(simplify(ctx, root)), node_count(root));
}

TEST_P(SmtProperty, Z3AgreesWithEvaluator) {
  Rng rng(GetParam() ^ 0x5eed);
  Context ctx;
  DagGen gen(ctx, rng, 3);
  ExprRef root = gen.grow(30);
  auto solver = make_z3_solver(ctx);

  Assignment a = random_assignment(ctx, rng);
  uint64_t value = evaluate(root, a);

  // Pin every variable to the assignment and assert root == value; if the
  // evaluator implements SMT-LIB semantics, Z3 must agree this is sat.
  std::vector<ExprRef> assertions;
  for (uint32_t id = 0; id < ctx.num_vars(); ++id) {
    const VarInfo& info = ctx.var_info(id);
    assertions.push_back(
        ctx.eq(ctx.var(info.name, info.width), ctx.constant(a.get(id), info.width)));
  }
  assertions.push_back(ctx.eq(root, ctx.constant(value, root->width)));
  EXPECT_EQ(solver->check(assertions, nullptr), CheckResult::kSat);

  // ... and that root == value+1 (mod 2^w, always a different value) is
  // unsat under the same pinning.
  assertions.back() = ctx.eq(root, ctx.constant(value + 1, root->width));
  EXPECT_EQ(solver->check(assertions, nullptr), CheckResult::kUnsat);
}

TEST_P(SmtProperty, InterningIsIdempotent) {
  // Replay the exact same build sequence twice against one interning
  // context: every builder call of the second pass must be answered from
  // the intern table, so the roots (and the whole pools behind them) are
  // pointer-identical and the node count does not move.
  uint64_t seed = GetParam() ^ 0x1d01a;
  Context ctx;
  Rng rng1(seed);
  DagGen gen1(ctx, rng1, 4);
  ExprRef first = gen1.grow(50);
  size_t nodes_after_first = ctx.num_nodes();
  Rng rng2(seed);
  DagGen gen2(ctx, rng2, 4);
  ExprRef second = gen2.grow(50);
  EXPECT_EQ(first, second);
  EXPECT_EQ(ctx.num_nodes(), nodes_after_first);
  EXPECT_GT(ctx.intern_hits(), 0u);
}

TEST_P(SmtProperty, ContentHashStableAcrossContexts) {
  // The same build sequence in a second context whose variable ids are
  // shifted by padding declarations: content hashes key on the variable
  // *name*, so every hash must match — the property that makes the hash
  // usable as a cross-context (and future persistent) cache key.
  uint64_t seed = GetParam() ^ 0xc0ffee;
  Context plain;
  Context padded;
  for (int i = 0; i < 5; ++i) padded.var("pad" + std::to_string(i), 8);
  Rng rng1(seed);
  DagGen gen1(plain, rng1, 4);
  ExprRef a = gen1.grow(40);
  Rng rng2(seed);
  DagGen gen2(padded, rng2, 4);
  ExprRef b = gen2.grow(40);
  ASSERT_EQ(a->width, b->width);
  EXPECT_EQ(a->hash, b->hash);
  EXPECT_NE(a->hash, 0u);
  // The shifted ids prove the hash ignores them.
  EXPECT_NE(plain.num_vars(), padded.num_vars());
}

TEST_P(SmtProperty, CachingEvaluatorMemosNeverAliasDistinctNodes) {
  // The evaluator memo keys on the content hash. In an interning context
  // equal hashes are the same pointer; in a legacy context structural
  // clones share entries. Either way, the memoized value for every node in
  // the DAG must equal a fresh, memo-free evaluation of that node.
  Rng rng(GetParam() ^ 0xeea1);
  for (bool intern : {true, false}) {
    Context ctx(intern);
    DagGen gen(ctx, rng, 4);
    ExprRef root = gen.grow(80);
    Assignment a = random_assignment(ctx, rng);
    CachingEvaluator cached(a);
    std::unordered_map<uint64_t, ExprRef> by_hash;
    postorder(root, [&](ExprRef n) {
      EXPECT_EQ(cached.evaluate(n), evaluate(n, a))
          << kind_name(n->kind) << " id " << n->id;
      auto [it, inserted] = by_hash.emplace(n->hash, n);
      if (!inserted && intern) {
        // Interning: one hash, one node.
        EXPECT_EQ(it->second, n);
      } else if (!inserted) {
        // Legacy clones may share a hash — then they must be structural
        // twins, which is exactly what makes the shared memo entry sound.
        EXPECT_TRUE(structurally_equal(it->second, n));
      }
    });
  }
}

TEST_P(SmtProperty, StoreKeysStableAcrossContextsInternToggleAndRestarts) {
  // The persistent store inherits the QueryCache keyspace: the sorted
  // content hashes of a query's assertions. Replaying the same build stream
  // in an id-shifted context AND in a legacy (non-interning) context must
  // produce the identical key — that is what makes a store entry written by
  // one process answer the same query in the next, whatever allocator or
  // declaration order that process used.
  uint64_t seed = GetParam() ^ 0x57072e;
  Context plain(/*intern_exprs=*/true);
  Context padded(/*intern_exprs=*/true);
  Context legacy(/*intern_exprs=*/false);
  for (int i = 0; i < 7; ++i) padded.var("pad" + std::to_string(i), 16);

  auto build_query = [&](Context& ctx) {
    Rng rng(seed);
    DagGen gen(ctx, rng, 4);
    ExprRef root = gen.grow(40);
    std::vector<ExprRef> assertions;
    assertions.push_back(ctx.eq(root, ctx.constant(0, root->width)));
    assertions.push_back(
        ctx.ult(ctx.zext(root, root->width == 64 ? 64 : root->width + 1),
                ctx.constant(5, root->width == 64 ? 64 : root->width + 1)));
    // Anchor over a fresh variable: whatever the random root folds to
    // (sometimes both assertions above become literal `true` and are
    // dropped from the key), this one always survives.
    assertions.push_back(ctx.ult(ctx.var("anchor", 8), ctx.constant(200, 8)));
    return assertions;
  };

  std::vector<ExprRef> a = build_query(plain);
  std::vector<ExprRef> b = build_query(padded);
  std::vector<ExprRef> c = build_query(legacy);
  QueryCache::Key key = QueryCache::key_for(a);
  EXPECT_FALSE(key.empty());
  EXPECT_EQ(key, QueryCache::key_for(b));
  EXPECT_EQ(key, QueryCache::key_for(c));

  // Restart simulation: an entry stored under the plain context's key,
  // flushed and reopened, answers the legacy context's key.
  const std::string dir = ::testing::TempDir() + "binsym-keystab-" +
                          std::to_string(GetParam());
  {
    auto store = SolverStore::open(dir);
    SolverStore::Entry entry;
    entry.verdict = CheckResult::kUnsat;
    entry.backend = "property";
    store->insert(key, entry);
    ASSERT_TRUE(store->flush());
  }
  auto reopened = SolverStore::open(dir);
  SolverStore::Entry entry;
  ASSERT_TRUE(reopened->lookup(QueryCache::key_for(c), &entry));
  EXPECT_EQ(entry.verdict, CheckResult::kUnsat);
  EXPECT_EQ(entry.backend, "property");
}

TEST_P(SmtProperty, PortfolioIsObservationallyASolver) {
  // Whatever the race decides internally, a portfolio must behave exactly
  // like any other smt::Solver: same verdicts as a reference backend on
  // forced-value queries, valid models, and the scoped push/assert_/
  // check_assuming API answering like the stateless check over the same
  // conjunction.
  Rng rng(GetParam() ^ 0xf0110);
  Context ctx;
  DagGen gen(ctx, rng, 3);
  ExprRef root = gen.grow(30);
  auto reference = make_z3_solver(ctx);
  std::vector<std::unique_ptr<Solver>> members;
  members.push_back(make_z3_solver(ctx));
  members.push_back(make_bitblast_solver(ctx));
  auto portfolio = make_portfolio_solver(std::move(members));

  Assignment a = random_assignment(ctx, rng);
  uint64_t value = evaluate(root, a);
  std::vector<ExprRef> pins;
  for (uint32_t id = 0; id < ctx.num_vars(); ++id) {
    const VarInfo& info = ctx.var_info(id);
    pins.push_back(ctx.eq(ctx.var(info.name, info.width),
                          ctx.constant(a.get(id), info.width)));
  }

  for (uint64_t offset : {uint64_t{0}, uint64_t{1}}) {
    std::vector<ExprRef> assertions = pins;
    assertions.push_back(
        ctx.eq(root, ctx.constant(value + offset, root->width)));
    Assignment expected_model;
    const CheckResult expected =
        reference->check(assertions, &expected_model);
    ASSERT_NE(expected, CheckResult::kUnknown);

    // Stateless contract.
    Assignment model;
    ASSERT_EQ(portfolio->check(assertions, &model), expected);
    if (expected == CheckResult::kSat) {
      for (ExprRef assertion : assertions)
        EXPECT_EQ(evaluate(assertion, model), 1u);
    }

    // Scoped contract: pins become scoped assertions, the forced value
    // travels as an assumption; the verdict must not change, and the scope
    // must unwind cleanly for the next round.
    portfolio->push();
    for (ExprRef pin : pins) portfolio->assert_(pin);
    std::vector<ExprRef> assumption{assertions.back()};
    model.values.clear();
    EXPECT_EQ(portfolio->check_assuming(assumption, &model), expected);
    if (expected == CheckResult::kSat) {
      for (ExprRef assertion : assertions)
        EXPECT_EQ(evaluate(assertion, model), 1u);
    }
    portfolio->pop();
    EXPECT_EQ(portfolio->num_scopes(), 0u);
    EXPECT_TRUE(portfolio->scoped_assertions().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtProperty,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace binsym::smt
