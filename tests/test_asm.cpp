// Assembler tests: encoding round-trips through the decoder/disassembler,
// pseudo-instruction expansion, directives, expressions and diagnostics.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "spec/registry.hpp"

namespace binsym::rvasm {
namespace {

class AsmTest : public ::testing::Test {
 protected:
  isa::OpcodeTable table;
  isa::Decoder decoder{table};

  /// Assemble and return the text-section words.
  std::vector<uint32_t> words(const std::string& source) {
    auto result = assemble(table, source, &errors);
    if (!result) return {};
    const elf::Segment& text = result->image.segments.front();
    std::vector<uint32_t> out;
    for (size_t i = 0; i + 3 < text.bytes.size(); i += 4) {
      out.push_back(static_cast<uint32_t>(text.bytes[i]) |
                    (text.bytes[i + 1] << 8) | (text.bytes[i + 2] << 16) |
                    (static_cast<uint32_t>(text.bytes[i + 3]) << 24));
    }
    return out;
  }

  std::string disasm_one(const std::string& line) {
    auto ws = words(line);
    EXPECT_EQ(ws.size(), 1u) << line;
    if (ws.empty()) return "";
    return isa::disassemble_word(decoder, ws[0], 0x1000);
  }

  std::vector<AsmError> errors;
};

TEST_F(AsmTest, BasicInstructions) {
  EXPECT_EQ(disasm_one("add a0, a1, a2"), "add a0, a1, a2");
  EXPECT_EQ(disasm_one("addi a0, a1, -5"), "addi a0, a1, -5");
  EXPECT_EQ(disasm_one("xori t0, t1, 0xff"), "xori t0, t1, 255");
  EXPECT_EQ(disasm_one("slli s1, s2, 31"), "slli s1, s2, 31");
  EXPECT_EQ(disasm_one("lw a0, 8(sp)"), "lw a0, 8(sp)");
  EXPECT_EQ(disasm_one("lbu t0, -1(a0)"), "lbu t0, -1(a0)");
  EXPECT_EQ(disasm_one("sw a0, -4(sp)"), "sw a0, -4(sp)");
  EXPECT_EQ(disasm_one("lui a0, 0xfffff"), "lui a0, 0xfffff");
  EXPECT_EQ(disasm_one("divu a1, a0, a1"), "divu a1, a0, a1");
  EXPECT_EQ(disasm_one("ecall"), "ecall");
  EXPECT_EQ(disasm_one("csrrw zero, 0x340, t0"), "csrrw zero, 0x340, t0");
}

TEST_F(AsmTest, BranchesResolveLabels) {
  auto ws = words(R"(
start:
    beq a0, a1, done
    addi a0, a0, 1
done:
    sub a0, a0, a1
)");
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(isa::disassemble_word(decoder, ws[0], 0x1000),
            "beq a0, a1, 0x1008");
  // Backward branch.
  auto back = words(R"(
loop:
    addi a0, a0, -1
    bnez a0, loop
)");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(isa::disassemble_word(decoder, back[1], 0x1004),
            "bne a0, zero, 0x1000");
}

TEST_F(AsmTest, JumpAndCall) {
  auto ws = words(R"(
    call func
    j end
func:
    ret
end:
    nop
)");
  ASSERT_EQ(ws.size(), 4u);
  EXPECT_EQ(isa::disassemble_word(decoder, ws[0], 0x1000), "jal ra, 0x1008");
  EXPECT_EQ(isa::disassemble_word(decoder, ws[1], 0x1004), "jal zero, 0x100c");
  EXPECT_EQ(isa::disassemble_word(decoder, ws[2], 0x1008),
            "jalr zero, ra, 0");
}

TEST_F(AsmTest, LiExpansion) {
  // Small immediates: single addi.
  EXPECT_EQ(words("li a0, 42").size(), 1u);
  EXPECT_EQ(words("li a0, -2048").size(), 1u);
  // Large immediates: lui + addi.
  auto big = words("li a0, 0x12345678");
  ASSERT_EQ(big.size(), 2u);
  EXPECT_EQ(isa::disassemble_word(decoder, big[0], 0), "lui a0, 0x12345");
  EXPECT_EQ(isa::disassemble_word(decoder, big[1], 0), "addi a0, a0, 1656");
  // Negative lo part borrows from hi: 0x12345fff.
  auto borrow = words("li a0, 0x12345fff");
  ASSERT_EQ(borrow.size(), 2u);
  EXPECT_EQ(isa::disassemble_word(decoder, borrow[0], 0), "lui a0, 0x12346");
  EXPECT_EQ(isa::disassemble_word(decoder, borrow[1], 0), "addi a0, a0, -1");
}

TEST_F(AsmTest, LaUsesHiLo) {
  auto result = assemble(table, R"(
.text
    la a0, target
.data
target: .word 0
)", &errors);
  ASSERT_TRUE(result.has_value());
  // data base is 0x10000: lui 0x10, addi 0.
  const elf::Segment& text = result->image.segments.front();
  uint32_t w0 = text.bytes[0] | (text.bytes[1] << 8) | (text.bytes[2] << 16) |
                (static_cast<uint32_t>(text.bytes[3]) << 24);
  EXPECT_EQ(isa::disassemble_word(decoder, w0, 0), "lui a0, 0x10");
}

TEST_F(AsmTest, PseudoInstructions) {
  EXPECT_EQ(disasm_one("nop"), "addi zero, zero, 0");
  EXPECT_EQ(disasm_one("mv a0, a1"), "addi a0, a1, 0");
  EXPECT_EQ(disasm_one("not a0, a1"), "xori a0, a1, -1");
  EXPECT_EQ(disasm_one("neg a0, a1"), "sub a0, zero, a1");
  EXPECT_EQ(disasm_one("seqz a0, a1"), "sltiu a0, a1, 1");
  EXPECT_EQ(disasm_one("snez a0, a1"), "sltu a0, zero, a1");
  EXPECT_EQ(disasm_one("jr t0"), "jalr zero, t0, 0");
}

TEST_F(AsmTest, BranchPseudoSwapsOperands) {
  auto ws = words("x: bgt a0, a1, x");
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(isa::disassemble_word(decoder, ws[0], 0x1000),
            "blt a1, a0, 0x1000");
  ws = words("x: bleu a0, a1, x");
  EXPECT_EQ(isa::disassemble_word(decoder, ws[0], 0x1000),
            "bgeu a1, a0, 0x1000");
}

TEST_F(AsmTest, DataDirectives) {
  auto result = assemble(table, R"(
.data
w:  .word 0x11223344, 5
h:  .half 0xbeef
b:  .byte 1, 2, 3
s:  .asciz "hi"
sp: .space 3, 0xaa
al: .align 2
z:  .word 0
)", &errors);
  ASSERT_TRUE(result.has_value()) << (errors.empty() ? "" : errors[0].message);
  const elf::Segment& data = result->image.segments.front();
  EXPECT_EQ(data.bytes[0], 0x44);
  EXPECT_EQ(data.bytes[3], 0x11);
  EXPECT_EQ(data.bytes[4], 5);
  EXPECT_EQ(data.bytes[8], 0xef);
  EXPECT_EQ(data.bytes[9], 0xbe);
  EXPECT_EQ(data.bytes[10], 1);
  EXPECT_EQ(data.bytes[13], 'h');
  EXPECT_EQ(data.bytes[14], 'i');
  EXPECT_EQ(data.bytes[15], 0);        // asciz terminator
  EXPECT_EQ(data.bytes[16], 0xaa);     // .space fill
  EXPECT_EQ(result->symbols.at("z") % 4, 0u);  // .align 2
}

TEST_F(AsmTest, Expressions) {
  EXPECT_EQ(disasm_one("addi a0, a0, 2+3"), "addi a0, a0, 5");
  EXPECT_EQ(disasm_one("addi a0, a0, 'A'"), "addi a0, a0, 65");
  EXPECT_EQ(disasm_one("addi a0, a0, 'z'+1"), "addi a0, a0, 123");
  EXPECT_EQ(disasm_one("addi a0, a0, -(7-2)"), "addi a0, a0, -5");
  EXPECT_EQ(disasm_one("addi a0, a0, 0b101"), "addi a0, a0, 5");
}

TEST_F(AsmTest, EquDefinesSymbols) {
  auto ws = words(R"(
.equ MAGIC, 0x2a
    addi a0, a0, MAGIC
)");
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(isa::disassemble_word(decoder, ws[0], 0), "addi a0, a0, 42");
}

TEST_F(AsmTest, Errors) {
  EXPECT_FALSE(assemble(table, "bogus a0, a1", &errors).has_value());
  EXPECT_FALSE(errors.empty());
  errors.clear();
  EXPECT_FALSE(assemble(table, "addi a0, a1, 5000", &errors).has_value());
  errors.clear();
  EXPECT_FALSE(assemble(table, "j nowhere", &errors).has_value());
  errors.clear();
  EXPECT_FALSE(assemble(table, "add a0, a1", &errors).has_value());
  errors.clear();
  EXPECT_FALSE(assemble(table, "x: .word 1\nx: .word 2", &errors).has_value());
}

TEST_F(AsmTest, EntryPoint) {
  auto with_start = assemble(table, "_start: nop", &errors);
  ASSERT_TRUE(with_start.has_value());
  EXPECT_EQ(with_start->image.entry, 0x1000u);
  auto without = assemble(table, "nop\nmain: nop", &errors);
  ASSERT_TRUE(without.has_value());
  EXPECT_EQ(without->image.entry, 0x1000u);  // falls back to text base
}

TEST_F(AsmTest, CustomInstructionAssembles) {
  // Register MADD, then assemble it generically by format.
  spec::Registry registry;
  ASSERT_TRUE(spec::install_custom_madd(table, registry).has_value());
  auto ws = words("madd t0, t1, t2, t3");
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(isa::disassemble_word(decoder, ws[0], 0),
            "madd t0, t1, t2, t3");
}

}  // namespace
}  // namespace binsym::rvasm
