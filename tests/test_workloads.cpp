// Workload-loader plumbing: the BINSYM_WORKLOADS_DIR environment override,
// and the error paths of read_workload_source/load_workload (a missing
// source must surface as a diagnosable exception naming the attempted
// path, not a process abort).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/executor.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

/// Scoped setter for BINSYM_WORKLOADS_DIR, restoring the prior value so
/// tests cannot leak environment state into each other.
class ScopedWorkloadsDir {
 public:
  /// Set the override for the scope; nullopt clears it for the scope.
  explicit ScopedWorkloadsDir(const std::optional<std::string>& value) {
    if (const char* old = std::getenv(kVar)) saved_ = old;
    if (value.has_value()) {
      setenv(kVar, value->c_str(), /*overwrite=*/1);
    } else {
      unsetenv(kVar);
    }
  }
  ~ScopedWorkloadsDir() {
    if (saved_.has_value()) {
      setenv(kVar, saved_->c_str(), 1);
    } else {
      unsetenv(kVar);
    }
  }

 private:
  static constexpr const char* kVar = "BINSYM_WORKLOADS_DIR";
  std::optional<std::string> saved_;
};

TEST(WorkloadsDir, DefaultPointsAtShippedCorpus) {
  ScopedWorkloadsDir scoped(std::nullopt);
  std::string dir = workloads::workloads_dir();
  EXPECT_FALSE(dir.empty());
  // The compile-time default must actually contain the shipped corpus.
  EXPECT_FALSE(workloads::read_workload_source("runtime").empty());
}

TEST(WorkloadsDir, EnvVarOverridesCompileTimeDefault) {
  ScopedWorkloadsDir scoped("/nonexistent-binsym-corpus");
  EXPECT_EQ(workloads::workloads_dir(), "/nonexistent-binsym-corpus");
}

TEST(WorkloadsDir, OverrideToRealDirectoryLoadsAlternateCorpus) {
  // A corpus override must be honoured end-to-end: drop a minimal runtime
  // and workload into a scratch directory and load through it.
  std::string dir = ::testing::TempDir() + "binsym-workloads";
  ASSERT_TRUE(mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  {
    std::ofstream runtime(dir + "/runtime.s");
    runtime << "_start:\n  li a7, 93\n  li a0, 0\n  ecall\n";
  }
  {
    std::ofstream prog(dir + "/tiny.s");
    prog << "tiny_pad:\n  nop\n";
  }
  ScopedWorkloadsDir scoped(dir);

  isa::OpcodeTable table;
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  core::Program program = workloads::load_workload(table, "tiny");
  EXPECT_TRUE(program.image.mapped(program.entry));
}

TEST(WorkloadsDir, MissingSourceThrowsWithAttemptedPath) {
  ScopedWorkloadsDir scoped("/nonexistent-binsym-corpus");
  try {
    workloads::read_workload_source("bubble-sort");
    FAIL() << "expected std::runtime_error for a missing workload source";
  } catch (const std::runtime_error& e) {
    // The diagnostic must name the attempted path and the override knob.
    EXPECT_NE(std::string(e.what()).find(
                  "/nonexistent-binsym-corpus/bubble-sort.s"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("BINSYM_WORKLOADS_DIR"),
              std::string::npos)
        << e.what();
  }
}

TEST(WorkloadsDir, MissingSourceNamesActiveOverride) {
  // With the override in effect, the diagnostic must say the path came
  // from BINSYM_WORKLOADS_DIR (a stale override is the usual culprit).
  ScopedWorkloadsDir scoped("/nonexistent-binsym-corpus");
  try {
    workloads::read_workload_source("bubble-sort");
    FAIL() << "expected std::runtime_error for a missing workload source";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("environment override"),
              std::string::npos)
        << e.what();
  }
}

TEST(LoadWorkload, UnknownNameThrowsClearDiagnostic) {
  isa::OpcodeTable table;
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  try {
    workloads::load_workload(table, "no-such-workload");
    FAIL() << "expected std::runtime_error for an unknown workload name";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-workload.s"),
              std::string::npos)
        << e.what();
    // Every loader error must teach the override knob, not just the
    // read_workload_source path the other tests pin.
    EXPECT_NE(std::string(e.what()).find("BINSYM_WORKLOADS_DIR"),
              std::string::npos)
        << e.what();
  }
}

TEST(LoadWorkload, Table1NamesAllResolve) {
  isa::OpcodeTable table;
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  for (const auto& info : workloads::table1_workloads())
    EXPECT_NO_THROW(workloads::load_workload(table, info.name)) << info.name;
}

// -- Raw-loader hardening (core::Program, the layer under every loader). -----

TEST(RawLoader, LoadBytesRejectsAddressSpaceWrap) {
  core::Program program;
  try {
    program.load_bytes(0xfffffffe, {1, 2, 3});
    FAIL() << "expected std::runtime_error for a wrapping payload";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("load_bytes"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("wraps"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(program.regions.empty());  // nothing partially loaded
}

TEST(RawLoader, LoadWordsRejectsAddressSpaceWrap) {
  core::Program program;
  EXPECT_THROW(program.load_words(0xfffffff8, {1, 2, 3}), std::runtime_error);
  EXPECT_TRUE(program.regions.empty());
}

TEST(RawLoader, BoundaryLoadStillAccepted) {
  // A payload ending exactly at 2^32 is legal; only crossing it is not.
  core::Program program;
  EXPECT_NO_THROW(program.load_bytes(0xfffffffc, {1, 2, 3, 4}));
  ASSERT_EQ(program.regions.size(), 1u);
  EXPECT_EQ(program.regions[0].lo, 0xfffffffcu);
  EXPECT_EQ(program.regions[0].hi, 0u);  // hi wraps to 0 == 2^32
}

}  // namespace
}  // namespace binsym
