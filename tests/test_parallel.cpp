// Tests for the parallel exploration engine: SearchStrategy implementations,
// the thread-safe Frontier, portable FlipJob seeds, worker-pool vs
// sequential equivalence, and the Table I determinism property (identical
// path sets across every strategy and across worker counts).
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "core/frontier.hpp"
#include "core/search.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

using core::FlipJob;
using core::SearchKind;

FlipJob job_with_bound(size_t bound) {
  FlipJob job;
  job.bound = bound;
  return job;
}

TEST(SearchStrategy, DepthFirstPopsDeepestFirst) {
  auto strategy = core::make_search_strategy(SearchKind::kDepthFirst);
  strategy->push(job_with_bound(1));
  strategy->push(job_with_bound(2));
  strategy->push(job_with_bound(3));
  EXPECT_EQ(strategy->size(), 3u);
  EXPECT_EQ(strategy->pop().bound, 3u);
  EXPECT_EQ(strategy->pop().bound, 2u);
  EXPECT_EQ(strategy->pop().bound, 1u);
  EXPECT_TRUE(strategy->empty());
}

TEST(SearchStrategy, BreadthFirstPopsShallowestFirst) {
  auto strategy = core::make_search_strategy(SearchKind::kBreadthFirst);
  strategy->push(job_with_bound(1));
  strategy->push(job_with_bound(2));
  strategy->push(job_with_bound(3));
  EXPECT_EQ(strategy->pop().bound, 1u);
  EXPECT_EQ(strategy->pop().bound, 2u);
  EXPECT_EQ(strategy->pop().bound, 3u);
}

TEST(SearchStrategy, RandomPathIsSeedDeterministicAndComplete) {
  auto order_for = [](uint64_t seed) {
    auto strategy = core::make_search_strategy(SearchKind::kRandomPath, seed);
    for (size_t i = 0; i < 16; ++i) strategy->push(job_with_bound(i));
    std::vector<size_t> order;
    while (!strategy->empty()) order.push_back(strategy->pop().bound);
    return order;
  };
  std::vector<size_t> a = order_for(7), b = order_for(7), c = order_for(8);
  EXPECT_EQ(a, b);  // same seed, same schedule
  EXPECT_NE(a, c);  // different seed, different schedule (16! >> collisions)
  std::set<size_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 16u);  // every job popped exactly once
}

TEST(SearchStrategy, CoverageGuidedPrefersLeastVisitedPc) {
  auto strategy = core::make_search_strategy(SearchKind::kCoverageGuided);
  core::PathTrace trace;
  trace.branches.push_back(core::BranchRecord{nullptr, true, 0x100});
  trace.branches.push_back(core::BranchRecord{nullptr, true, 0x100});
  trace.branches.push_back(core::BranchRecord{nullptr, false, 0x200});
  strategy->observe(trace);  // visits: 0x100 -> 2, 0x200 -> 1, 0x300 -> 0

  FlipJob hot;
  hot.flip_pc = 0x100;
  FlipJob warm;
  warm.flip_pc = 0x200;
  warm.seq = 1;
  FlipJob cold;
  cold.flip_pc = 0x300;
  cold.seq = 2;
  strategy->push(hot);
  strategy->push(warm);
  strategy->push(cold);
  EXPECT_EQ(strategy->pop().flip_pc, 0x300u);
  EXPECT_EQ(strategy->pop().flip_pc, 0x200u);
  EXPECT_EQ(strategy->pop().flip_pc, 0x100u);
}

TEST(Frontier, DrainsWhenNoJobInFlight) {
  core::Frontier frontier(core::make_search_strategy(SearchKind::kDepthFirst));
  frontier.push(FlipJob{});
  FlipJob job;
  ASSERT_TRUE(frontier.pop(&job));
  frontier.push(job_with_bound(1));  // child discovered while in flight
  frontier.job_done();
  ASSERT_TRUE(frontier.pop(&job));
  EXPECT_EQ(job.bound, 1u);
  frontier.job_done();
  EXPECT_FALSE(frontier.pop(&job));  // no jobs pending, none in flight
}

TEST(Frontier, StopWakesAndTerminates) {
  core::Frontier frontier(core::make_search_strategy(SearchKind::kDepthFirst));
  frontier.push(FlipJob{});
  FlipJob job;
  ASSERT_TRUE(frontier.pop(&job));
  // A second consumer blocks (queue empty, one job in flight) until stop().
  std::thread consumer([&] {
    FlipJob other;
    EXPECT_FALSE(frontier.pop(&other));
  });
  frontier.stop();
  consumer.join();
  EXPECT_TRUE(frontier.stopped());
  EXPECT_FALSE(frontier.pop(&job));
}

TEST(Frontier, BlockedConsumerReceivesPushedWork) {
  core::Frontier frontier(core::make_search_strategy(SearchKind::kDepthFirst));
  frontier.push(FlipJob{});
  FlipJob job;
  ASSERT_TRUE(frontier.pop(&job));  // this test acts as the in-flight worker
  FlipJob received;
  std::thread consumer([&] {
    ASSERT_TRUE(frontier.pop(&received));
    frontier.job_done();
  });
  frontier.push(job_with_bound(42));
  consumer.join();
  EXPECT_EQ(received.bound, 42u);
  frontier.job_done();
  EXPECT_FALSE(frontier.pop(&job));
}

TEST(FlipJob, SeedsArePortableAcrossContexts) {
  // Jobs cross worker boundaries: a seed mined from one worker's context
  // must rebind onto another context where "in_0" has a different node id.
  smt::Context producer;
  smt::ExprRef in0 = producer.var("in_0", 8);
  smt::Assignment seed;
  seed.set(in0->var_id, 0x42);

  FlipJob job = core::make_flip_job(producer, seed, 3, 0x80);
  EXPECT_EQ(job.bound, 3u);
  EXPECT_EQ(job.flip_pc, 0x80u);

  smt::Context consumer;
  consumer.var("unrelated", 32);  // shift var ids relative to the producer
  smt::Assignment rebound = core::seed_from_job(consumer, job);
  smt::ExprRef in0_consumer = consumer.var("in_0", 8);
  EXPECT_NE(in0_consumer->var_id, in0->var_id);
  EXPECT_EQ(rebound.get(in0_consumer->var_id), 0x42u);
}

// -- Engine-level equivalence. ----------------------------------------------

class ParallelEngineTest : public ::testing::Test {
 protected:
  ParallelEngineTest() { spec::install_rv32im(registry, table); }

  core::Program load(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  core::WorkerFactory factory_for(const core::Program& program) {
    return [this, &program](unsigned) {
      core::WorkerResources r;
      r.ctx = std::make_unique<smt::Context>();
      r.executor = std::make_unique<core::BinSymExecutor>(*r.ctx, decoder,
                                                          registry, program);
      r.solver = smt::make_z3_solver(*r.ctx);
      return r;
    };
  }

  struct Exploration {
    uint64_t paths = 0;
    std::set<std::string> path_keys;   // branch-decision strings
    std::multiset<uint32_t> failures;  // failure ids across all paths
  };

  Exploration explore(const core::Program& program, SearchKind kind,
                      unsigned jobs, uint64_t max_paths = UINT64_MAX) {
    core::EngineOptions options;
    options.search = kind;
    options.jobs = jobs;
    options.max_paths = max_paths;
    core::DseEngine engine(factory_for(program), options);
    Exploration result;
    std::set<std::string> duplicate_guard;
    core::EngineStats stats =
        engine.explore([&](const core::PathResult& path) {
          std::string key;
          key.reserve(path.trace.branches.size());
          for (const core::BranchRecord& b : path.trace.branches)
            key += b.taken ? '1' : '0';
          EXPECT_TRUE(duplicate_guard.insert(key).second)
              << "path " << key << " enumerated twice";
          result.path_keys.insert(key);
          for (const core::Failure& f : path.trace.failures)
            result.failures.insert(f.id);
        });
    result.paths = stats.paths;
    EXPECT_EQ(stats.workers, jobs);
    return result;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

constexpr const char* kGuardedFailureGuest = R"(
_start:
    la a0, buf
    li a1, 3
    li a7, 2
    ecall
    la s0, buf
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    lbu t2, 2(s0)
    li t3, 0x21
    bne t0, t3, skip1
    li a0, 7
    li a7, 3
    ecall
skip1:
    bltu t1, t2, skip2
    nop
skip2:
    beqz t2, skip3
    nop
skip3:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 3
)";

TEST_F(ParallelEngineTest, WorkerPoolMatchesSequentialExploration) {
  core::Program program = load(kGuardedFailureGuest);
  Exploration reference = explore(program, SearchKind::kDepthFirst, 1);
  EXPECT_GE(reference.paths, 4u);
  // The failure site precedes two more branch sites, so the failing prefix
  // forks into several complete paths, each reporting id 7.
  EXPECT_GE(reference.failures.count(7), 1u);
  for (unsigned jobs : {2u, 4u}) {
    Exploration parallel = explore(program, SearchKind::kDepthFirst, jobs);
    EXPECT_EQ(parallel.paths, reference.paths) << jobs << " jobs";
    EXPECT_EQ(parallel.path_keys, reference.path_keys) << jobs << " jobs";
    EXPECT_EQ(parallel.failures, reference.failures) << jobs << " jobs";
  }
}

TEST_F(ParallelEngineTest, MaxPathsBudgetIsExactUnderParallelism) {
  core::Program program = load(kGuardedFailureGuest);
  Exploration bounded = explore(program, SearchKind::kDepthFirst, 4, 3);
  EXPECT_EQ(bounded.paths, 3u);
}

TEST_F(ParallelEngineTest, JobsAboveOneRequireWorkerFactory) {
  core::Program program = load(kGuardedFailureGuest);
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::EngineOptions options;
  options.jobs = 2;
  core::DseEngine engine(executor, smt::make_z3_solver(ctx), options);
  EXPECT_THROW(engine.explore(), std::invalid_argument);
}

// -- Determinism across strategies and worker counts (Table I). -------------
//
// The exploration tree of the offline engine is a function of the program
// alone, so every strategy and every worker count must discover the same
// path *set* — only discovery order may differ. This is the property that
// keeps Table I reproduction intact under the parallel engine.

class WorkloadDeterminism : public ParallelEngineTest,
                            public ::testing::WithParamInterface<const char*> {
};

TEST_P(WorkloadDeterminism, PathSetInvariantAcrossStrategiesAndJobs) {
  core::Program program = workloads::load_workload(table, GetParam());
  Exploration reference = explore(program, SearchKind::kDepthFirst, 1);
  EXPECT_GT(reference.paths, 100u);
  EXPECT_EQ(reference.paths, reference.path_keys.size());

  for (SearchKind kind : core::all_search_kinds()) {
    for (unsigned jobs : {1u, 4u}) {
      if (kind == SearchKind::kDepthFirst && jobs == 1) continue;  // reference
      Exploration run = explore(program, kind, jobs);
      EXPECT_EQ(run.paths, reference.paths)
          << core::search_kind_name(kind) << " with " << jobs << " jobs";
      EXPECT_EQ(run.path_keys, reference.path_keys)
          << core::search_kind_name(kind) << " with " << jobs << " jobs";
      EXPECT_EQ(run.failures, reference.failures)
          << core::search_kind_name(kind) << " with " << jobs << " jobs";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, WorkloadDeterminism,
                         ::testing::Values("base64-encode", "bubble-sort",
                                           "clif-parser", "insertion-sort",
                                           "uri-parser"));

}  // namespace
}  // namespace binsym
