// The engine's SMT-LIB query-dump option: every branch-flip query lands as
// a standalone .smt2 file that Z3's own parser accepts and whose verdict
// matches the engine's — the replayable-artifact property.
#include <gtest/gtest.h>
#include <z3.h>

#include <filesystem>
#include <fstream>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"

namespace binsym::core {
namespace {

TEST(SmtlibDump, QueriesAreWrittenAndReplayable) {
  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  Program program = elf::to_program(rvasm::assemble_or_die(table, R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    li t2, 100
    bltu t1, t2, low
low:
    li t3, 10
    bltu t1, t3, tiny
tiny:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 1
)").image);

  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "binsym_smt_dump";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  smt::Context ctx;
  BinSymExecutor executor(ctx, decoder, registry, program);
  EngineOptions options;
  options.smtlib_dump_dir = dir.string();
  DseEngine engine(executor, smt::make_z3_solver(ctx), options);
  EngineStats stats = engine.explore();

  // One file per flip attempt.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    // Replay through Z3's SMT-LIB parser: must parse and yield a verdict.
    std::ifstream in(entry.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_FALSE(text.empty());
    Z3_config cfg = Z3_mk_config();
    Z3_context z3 = Z3_mk_context(cfg);
    Z3_del_config(cfg);
    Z3_ast_vector parsed = Z3_parse_smtlib2_string(
        z3, text.c_str(), 0, nullptr, nullptr, 0, nullptr, nullptr);
    Z3_ast_vector_inc_ref(z3, parsed);
    EXPECT_GT(Z3_ast_vector_size(z3, parsed), 0u) << entry.path();
    Z3_solver solver = Z3_mk_solver(z3);
    Z3_solver_inc_ref(z3, solver);
    for (unsigned i = 0; i < Z3_ast_vector_size(z3, parsed); ++i)
      Z3_solver_assert(z3, solver, Z3_ast_vector_get(z3, parsed, i));
    Z3_lbool verdict = Z3_solver_check(z3, solver);
    EXPECT_NE(verdict, Z3_L_UNDEF);
    Z3_solver_dec_ref(z3, solver);
    Z3_ast_vector_dec_ref(z3, parsed);
    Z3_del_context(z3);
  }
  EXPECT_EQ(files, stats.flip_attempts);
  EXPECT_GE(files, 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace binsym::core
