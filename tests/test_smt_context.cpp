// Unit tests for the expression context: hash-consing identity, constant
// folding and the peephole rules the builders apply.
#include <gtest/gtest.h>

#include "smt/context.hpp"

namespace binsym::smt {
namespace {

class ContextTest : public ::testing::Test {
 protected:
  Context ctx;
};

TEST_F(ContextTest, ConstantsAreInterned) {
  EXPECT_EQ(ctx.constant(5, 32), ctx.constant(5, 32));
  EXPECT_NE(ctx.constant(5, 32), ctx.constant(5, 16));
  EXPECT_NE(ctx.constant(5, 32), ctx.constant(6, 32));
}

TEST_F(ContextTest, ConstantsAreCanonical) {
  EXPECT_EQ(ctx.constant(0x1ff, 8)->constant, 0xffu);
  EXPECT_EQ(ctx.constant(~uint64_t{0}, 32)->constant, 0xffffffffu);
}

TEST_F(ContextTest, VariablesByNameAreIdentical) {
  ExprRef a = ctx.var("x", 32);
  ExprRef b = ctx.var("x", 32);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, ctx.var("y", 32));
}

TEST_F(ContextTest, FreshVariablesAreDistinct) {
  EXPECT_NE(ctx.fresh_var("t", 8), ctx.fresh_var("t", 8));
}

TEST_F(ContextTest, StructuralSharing) {
  ExprRef x = ctx.var("x", 32);
  ExprRef y = ctx.var("y", 32);
  EXPECT_EQ(ctx.add(x, y), ctx.add(x, y));
  EXPECT_NE(ctx.add(x, y), ctx.add(y, x));  // not commutative-normalized
}

TEST_F(ContextTest, BinaryConstantFolding) {
  EXPECT_TRUE(ctx.add(ctx.constant(3, 32), ctx.constant(4, 32))->is_const_val(7));
  EXPECT_TRUE(ctx.mul(ctx.constant(6, 32), ctx.constant(7, 32))->is_const_val(42));
  EXPECT_TRUE(ctx.udiv(ctx.constant(7, 32), ctx.constant(0, 32))
                  ->is_const_val(0xffffffff));
  EXPECT_TRUE(ctx.sub(ctx.constant(0, 8), ctx.constant(1, 8))->is_const_val(0xff));
}

TEST_F(ContextTest, AddPeepholes) {
  ExprRef x = ctx.var("x", 32);
  EXPECT_EQ(ctx.add(x, ctx.constant(0, 32)), x);
  EXPECT_EQ(ctx.add(ctx.constant(0, 32), x), x);
  // Constant chains collapse: (x + 1) + 2 == x + 3.
  ExprRef chained = ctx.add(ctx.add(x, ctx.constant(1, 32)), ctx.constant(2, 32));
  ASSERT_EQ(chained->kind, Kind::kAdd);
  EXPECT_TRUE(chained->ops[1]->is_const_val(3));
  // Subtraction of a constant becomes addition of its negation.
  ExprRef sub = ctx.sub(x, ctx.constant(1, 32));
  EXPECT_EQ(sub->kind, Kind::kAdd);
  EXPECT_EQ(ctx.sub(x, x), ctx.constant(0, 32));
}

TEST_F(ContextTest, BitwisePeepholes) {
  ExprRef x = ctx.var("x", 32);
  ExprRef zero = ctx.constant(0, 32);
  ExprRef ones = ctx.constant(0xffffffff, 32);
  EXPECT_EQ(ctx.and_(x, zero), zero);
  EXPECT_EQ(ctx.and_(x, ones), x);
  EXPECT_EQ(ctx.and_(x, x), x);
  EXPECT_EQ(ctx.or_(x, zero), x);
  EXPECT_EQ(ctx.or_(x, ones), ones);
  EXPECT_EQ(ctx.xor_(x, x), zero);
  EXPECT_EQ(ctx.xor_(x, ones), ctx.not_(x));
  EXPECT_EQ(ctx.not_(ctx.not_(x)), x);
  EXPECT_EQ(ctx.neg(ctx.neg(x)), x);
}

TEST_F(ContextTest, ShiftPeepholes) {
  ExprRef x = ctx.var("x", 32);
  EXPECT_EQ(ctx.shl(x, ctx.constant(0, 32)), x);
  EXPECT_TRUE(ctx.shl(x, ctx.constant(32, 32))->is_const_val(0));
  EXPECT_TRUE(ctx.lshr(x, ctx.constant(99, 32))->is_const_val(0));
  // ashr by >= width depends on the sign bit, so it must NOT fold.
  EXPECT_EQ(ctx.ashr(x, ctx.constant(99, 32))->kind, Kind::kAShr);
}

TEST_F(ContextTest, ComparisonPeepholes) {
  ExprRef x = ctx.var("x", 32);
  EXPECT_TRUE(ctx.eq(x, x)->is_true());
  EXPECT_TRUE(ctx.ult(x, x)->is_false());
  EXPECT_TRUE(ctx.ule(x, x)->is_true());
  EXPECT_TRUE(ctx.ult(x, ctx.constant(0, 32))->is_false());
  EXPECT_TRUE(ctx.ule(ctx.constant(0, 32), x)->is_true());
  // 0 < x rewrites to x != 0.
  ExprRef lt = ctx.ult(ctx.constant(0, 32), x);
  EXPECT_EQ(lt->kind, Kind::kNot);
  EXPECT_EQ(lt->ops[0]->kind, Kind::kEq);
}

TEST_F(ContextTest, BooleanEqualityReduces) {
  ExprRef b = ctx.var("b", 1);
  EXPECT_EQ(ctx.eq(b, ctx.bool_const(true)), b);
  EXPECT_EQ(ctx.eq(b, ctx.bool_const(false)), ctx.not_(b));
}

TEST_F(ContextTest, ExtensionRules) {
  ExprRef x = ctx.var("x", 8);
  EXPECT_EQ(ctx.zext(x, 8), x);
  EXPECT_EQ(ctx.zext(ctx.zext(x, 16), 32), ctx.zext(x, 32));
  EXPECT_EQ(ctx.sext(ctx.sext(x, 16), 32), ctx.sext(x, 32));
  EXPECT_TRUE(ctx.sext(ctx.constant(0x80, 8), 32)->is_const_val(0xffffff80));
  EXPECT_TRUE(ctx.zext(ctx.constant(0x80, 8), 32)->is_const_val(0x80));
}

TEST_F(ContextTest, ExtractRules) {
  ExprRef x = ctx.var("x", 32);
  EXPECT_EQ(ctx.extract(x, 31, 0), x);
  // extract of extract composes.
  ExprRef inner = ctx.extract(x, 23, 8);   // 16 bits
  ExprRef outer = ctx.extract(inner, 7, 0);
  EXPECT_EQ(outer, ctx.extract(x, 15, 8));
  // Low extract of an extension hits the original operand.
  ExprRef b = ctx.var("b", 8);
  EXPECT_EQ(ctx.extract(ctx.zext(b, 32), 7, 0), b);
  EXPECT_TRUE(ctx.extract(ctx.zext(b, 32), 31, 8)->is_const_val(0));
  // Extract aligned with concat halves selects the half.
  ExprRef hi = ctx.var("h", 8), lo = ctx.var("l", 8);
  ExprRef cat = ctx.concat(hi, lo);
  EXPECT_EQ(ctx.extract(cat, 7, 0), lo);
  EXPECT_EQ(ctx.extract(cat, 15, 8), hi);
}

TEST_F(ContextTest, ConcatRules) {
  ExprRef lo = ctx.var("l", 8);
  EXPECT_EQ(ctx.concat(ctx.constant(0, 8), lo), ctx.zext(lo, 16));
  ExprRef c = ctx.concat(ctx.constant(0xab, 8), ctx.constant(0xcd, 8));
  EXPECT_TRUE(c->is_const_val(0xabcd));
  EXPECT_EQ(c->width, 16);
}

TEST_F(ContextTest, IteRules) {
  ExprRef c = ctx.var("c", 1);
  ExprRef a = ctx.var("a", 32), b = ctx.var("b", 32);
  EXPECT_EQ(ctx.ite(ctx.bool_const(true), a, b), a);
  EXPECT_EQ(ctx.ite(ctx.bool_const(false), a, b), b);
  EXPECT_EQ(ctx.ite(c, a, a), a);
  EXPECT_EQ(ctx.ite(ctx.not_(c), a, b), ctx.ite(c, b, a));
  // Boolean-valued ite reduces to the condition itself.
  EXPECT_EQ(ctx.ite(c, ctx.bool_const(true), ctx.bool_const(false)), c);
  EXPECT_EQ(ctx.ite(c, ctx.bool_const(false), ctx.bool_const(true)),
            ctx.not_(c));
}

TEST_F(ContextTest, NodeCountAndVarCollection) {
  ExprRef x = ctx.var("x", 32), y = ctx.var("y", 32);
  ExprRef sum = ctx.add(x, y);
  ExprRef expr = ctx.mul(sum, sum);  // shared sub-DAG
  EXPECT_EQ(node_count(expr), 4u);   // x, y, add, mul
  auto vars = collect_vars({expr});
  EXPECT_EQ(vars.size(), 2u);
}

}  // namespace
}  // namespace binsym::smt
