// Concolic machine unit tests: branch recording, address concretization
// assumptions, syscall dispatch, x0 hardwiring and reset semantics.
#include <gtest/gtest.h>

#include <z3.h>

#include <set>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "smt/smtlib.hpp"
#include "smt/eval.hpp"

namespace binsym::core {
namespace {

TEST(ExitReason, EveryEnumeratorHasADistinctName) {
  // Guards the enum and its string table against drifting apart: every
  // enumerator must map to a real (non-"?"), unique name. Update both this
  // list and exit_reason_name when adding an enumerator.
  const std::vector<std::pair<ExitReason, const char*>> expected = {
      {ExitReason::kRunning, "running"},
      {ExitReason::kExit, "exit"},
      {ExitReason::kEbreak, "ebreak"},
      {ExitReason::kMaxSteps, "max-steps"},
      {ExitReason::kBadFetch, "bad-fetch"},
      {ExitReason::kIllegalInstr, "illegal-instruction"},
      {ExitReason::kBadSyscall, "bad-syscall"},
      {ExitReason::kSymbolicControl, "symbolic-control"},
  };
  std::set<std::string> names;
  for (const auto& [reason, name] : expected) {
    EXPECT_STREQ(exit_reason_name(reason), name);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  // An out-of-range value (enum drift without a string-table update) must
  // fall back to the sentinel, not read out of bounds.
  EXPECT_STREQ(exit_reason_name(static_cast<ExitReason>(
                   static_cast<uint8_t>(ExitReason::kSymbolicControl) + 1)),
               "?");
}

class SymMachineTest : public ::testing::Test {
 protected:
  SymMachineTest() : machine(ctx) {
    machine.reset(ConcreteMemory{}, /*entry=*/0x1000, /*stack_top=*/0x8000,
                  seed, trace);
  }

  smt::Context ctx;
  smt::Assignment seed;
  PathTrace trace;
  SymMachine machine;
};

TEST_F(SymMachineTest, ResetState) {
  EXPECT_EQ(machine.pc(), 0x1000u);
  EXPECT_EQ(machine.read_register(2).conc, 0x8000u);  // sp
  EXPECT_EQ(machine.read_register(5).conc, 0u);
  EXPECT_TRUE(machine.running());
}

TEST_F(SymMachineTest, X0IsHardwired) {
  machine.write_register(0, interp::sval(123, 32));
  EXPECT_EQ(machine.read_register(0).conc, 0u);
  EXPECT_FALSE(machine.read_register(0).symbolic());
}

TEST_F(SymMachineTest, ConcreteBranchesNotRecorded) {
  EXPECT_TRUE(machine.choose(interp::sval(1, 1)));
  EXPECT_FALSE(machine.choose(interp::sval(0, 1)));
  EXPECT_TRUE(trace.branches.empty());
}

TEST_F(SymMachineTest, SymbolicBranchesRecordConditionAndDirection) {
  smt::ExprRef x = ctx.var("x", 32);
  seed.set(x->var_id, 7);
  interp::SymValue cond{1, 1, ctx.ult(x, ctx.constant(10, 32))};
  EXPECT_TRUE(machine.choose(cond));
  ASSERT_EQ(trace.branches.size(), 1u);
  EXPECT_EQ(trace.branches[0].cond, cond.sym);
  EXPECT_TRUE(trace.branches[0].taken);

  interp::SymValue cond2{0, 1, ctx.ult(x, ctx.constant(3, 32))};
  EXPECT_FALSE(machine.choose(cond2));
  EXPECT_FALSE(trace.branches[1].taken);
}

TEST_F(SymMachineTest, SymbolicAddressIsConcretizedWithAssumption) {
  smt::ExprRef a = ctx.var("a", 32);
  interp::SymValue addr{0x2000, 32, a};
  machine.store(4, addr, interp::sval(0xabcd, 32));
  ASSERT_EQ(trace.assumptions.size(), 1u);
  // The assumption pins a == 0x2000.
  smt::Assignment model;
  model.set(a->var_id, 0x2000);
  EXPECT_EQ(smt::evaluate(trace.assumptions[0].expr, model), 1u);
  model.set(a->var_id, 0x2004);
  EXPECT_EQ(smt::evaluate(trace.assumptions[0].expr, model), 0u);
  // The store itself happened at the concrete address.
  EXPECT_EQ(machine.memory().read_concrete(0x2000, 4), 0xabcdu);
}

TEST_F(SymMachineTest, AssumptionsOrderedRelativeToBranches) {
  smt::ExprRef x = ctx.var("x", 32);
  machine.choose(interp::SymValue{1, 1, ctx.ult(x, ctx.constant(5, 32))});
  machine.load(1, interp::SymValue{0x3000, 32, x});
  ASSERT_EQ(trace.assumptions.size(), 1u);
  EXPECT_EQ(trace.assumptions[0].branch_index, 1u);  // after branch 0
}

TEST_F(SymMachineTest, EcallExit) {
  machine.write_register(17, interp::sval(kSysExit, 32));
  machine.write_register(10, interp::sval(42, 32));
  machine.ecall();
  EXPECT_FALSE(machine.running());
  EXPECT_EQ(trace.exit, ExitReason::kExit);
  EXPECT_EQ(trace.exit_code, 42u);
}

TEST_F(SymMachineTest, EcallSymInputBindsSeedValues) {
  seed.set(ctx.var("in_0", 8)->var_id, 0xaa);
  seed.set(ctx.var("in_1", 8)->var_id, 0xbb);
  machine.write_register(17, interp::sval(kSysSymInput, 32));
  machine.write_register(10, interp::sval(0x4000, 32));  // buffer
  machine.write_register(11, interp::sval(2, 32));       // length
  machine.ecall();
  EXPECT_EQ(trace.input_vars.size(), 2u);
  EXPECT_EQ(machine.memory().read_concrete(0x4000, 2), 0xbbaau);
  interp::SymValue loaded = machine.load(2, interp::sval(0x4000, 32));
  EXPECT_TRUE(loaded.symbolic());
}

TEST_F(SymMachineTest, EcallUnknownNumberStops) {
  machine.write_register(17, interp::sval(0x999, 32));
  machine.ecall();
  EXPECT_EQ(trace.exit, ExitReason::kBadSyscall);
  EXPECT_EQ(trace.exit_code, 0x999u);
}

TEST_F(SymMachineTest, EcallPutCharAndReportFail) {
  machine.write_register(17, interp::sval(kSysPutChar, 32));
  machine.write_register(10, interp::sval('A', 32));
  machine.ecall();
  machine.write_register(17, interp::sval(kSysReportFail, 32));
  machine.write_register(10, interp::sval(7, 32));
  machine.ecall();
  EXPECT_EQ(trace.output, "A");
  ASSERT_EQ(trace.failures.size(), 1u);
  EXPECT_EQ(trace.failures[0].id, 7u);
  EXPECT_TRUE(machine.running());  // neither call stops the machine
}

TEST_F(SymMachineTest, CsrRoundTrip) {
  machine.write_csr(0x340, interp::sval(0x1234, 32));
  EXPECT_EQ(machine.read_csr(0x340).conc, 0x1234u);
  EXPECT_EQ(machine.read_csr(0x341).conc, 0u);
}

TEST_F(SymMachineTest, SecondResetClearsEverything) {
  machine.write_register(7, interp::sval(1, 32));
  machine.memory().store(0x100, 1, interp::sval(9, 8));
  PathTrace trace2;
  machine.reset(ConcreteMemory{}, 0x2000, 0x9000, seed, trace2);
  EXPECT_EQ(machine.read_register(7).conc, 0u);
  EXPECT_EQ(machine.memory().read_concrete(0x100, 1), 0u);
  EXPECT_EQ(machine.pc(), 0x2000u);
}

TEST(SmtlibZ3Parse, PrintedQueriesAreValidSmtlib) {
  // The printer's output must be accepted by Z3's own SMT-LIB parser and
  // produce the same verdict as the native backend.
  smt::Context ctx;
  smt::ExprRef x = ctx.var("x", 8);
  smt::ExprRef shared = ctx.add(x, ctx.constant(1, 8));
  std::vector<smt::ExprRef> assertions = {
      ctx.eq(ctx.mul(shared, shared), ctx.constant(49, 8)),
      ctx.ult(x, ctx.constant(100, 8))};
  std::string text = smt::query_string(ctx, assertions);

  Z3_config cfg = Z3_mk_config();
  Z3_context z3 = Z3_mk_context(cfg);
  Z3_del_config(cfg);
  Z3_ast_vector parsed =
      Z3_parse_smtlib2_string(z3, text.c_str(), 0, nullptr, nullptr, 0,
                              nullptr, nullptr);
  Z3_ast_vector_inc_ref(z3, parsed);
  Z3_solver solver = Z3_mk_solver(z3);
  Z3_solver_inc_ref(z3, solver);
  for (unsigned i = 0; i < Z3_ast_vector_size(z3, parsed); ++i)
    Z3_solver_assert(z3, solver, Z3_ast_vector_get(z3, parsed, i));
  EXPECT_EQ(Z3_solver_check(z3, solver), Z3_L_TRUE);  // x == 6 works
  Z3_solver_dec_ref(z3, solver);
  Z3_ast_vector_dec_ref(z3, parsed);
  Z3_del_context(z3);
}

}  // namespace
}  // namespace binsym::core
