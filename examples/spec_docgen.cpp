// Documentation generator: renders the complete formal ISA specification
// as a markdown reference manual — one of the "once formally specified, a
// variety of tools can be derived" payoffs the paper lists (Sect. IV:
// documentation, simulators, fault-injection tooling).
//
//   spec_docgen [output.md]    (stdout by default)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>

#include "dsl/pretty.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"
#include "support/format.hpp"

using namespace binsym;

namespace {

void emit(std::ostream& os, const isa::OpcodeTable& table,
          const spec::Registry& registry) {
  os << "# RV32IM Formal Specification Reference\n\n";
  os << "Generated from the executable specification (src/spec). Encodings\n"
        "follow riscv-opcodes; semantics are rendered from the DSL AST that\n"
        "every interpreter (ISS, symbolic engine, taint tracker) executes.\n";

  // Group by extension, preserving table order inside a group.
  std::map<std::string, std::vector<const isa::OpcodeInfo*>> by_extension;
  for (const isa::OpcodeInfo& info : table.entries())
    by_extension[info.extension].push_back(&info);

  for (const auto& [extension, instructions] : by_extension) {
    os << "\n## Extension `" << extension << "` (" << instructions.size()
       << " instructions)\n";
    for (const isa::OpcodeInfo* info : instructions) {
      std::string upper = info->name;
      for (char& c : upper) c = static_cast<char>(std::toupper(c));
      os << "\n### " << upper << "\n\n";
      os << "| field | value |\n|---|---|\n";
      os << "| format | " << isa::format_name(info->format) << " |\n";
      os << "| mask | `" << hex32(info->mask) << "` |\n";
      os << "| match | `" << hex32(info->match) << "` |\n\n";
      const dsl::Semantics* semantics = registry.get(info->id);
      if (!semantics) {
        os << "*(no semantics registered)*\n";
        continue;
      }
      os << "```haskell\n"
         << dsl::pretty_semantics(upper, *semantics) << "```\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  isa::OpcodeTable table;
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  spec::install_custom_madd(table, registry);  // custom instructions too
  spec::install_zbb(table, registry);          // runtime-registered extension

  if (argc > 1) {
    std::ofstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    emit(file, table, registry);
    std::fprintf(stderr, "wrote %s\n", argv[1]);
  } else {
    emit(std::cout, table, registry);
  }
  return 0;
}
