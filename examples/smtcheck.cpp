// smtcheck: a minimal SMT-LIB v2 solver CLI over the in-tree backends.
//
// Reads one query from stdin in exactly the dialect src/smt/smtlib.cpp
// prints (declare-const / assert / check-sat, plus an optional trailing
// `(get-value (...))`), answers sat/unsat/unknown on stdout and, on sat,
// prints the requested values as `((name (_ bvN w)) ...)`.
//
// Its reason to exist is the pipe solver (src/smt/pipe.cpp): `smtcheck`
// speaks the exact protocol the pipe backend expects, so the external-
// process path can be exercised hermetically — in tests, CI and solver
// portfolios — on machines with no z3/cvc5 binary installed. It also
// doubles as a handy command-line checker for queries dumped by
// --smtlib-dump-dir.
//
// Usage: smtcheck [--solver z3|bitblast]   (query on stdin)

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "smt/context.hpp"
#include "smt/eval.hpp"
#include "smt/smtlib.hpp"
#include "smt/solver.hpp"

namespace {

using namespace binsym;

/// Remove every `(get-value ...)` form from `text` (balanced-paren scan),
/// returning the names listed in the last one. parse_query does not accept
/// the command, and the pipe protocol appends it after check-sat.
std::string strip_get_value(const std::string& text,
                            std::vector<std::string>* names) {
  std::string out;
  size_t pos = 0;
  const std::string marker = "(get-value";
  for (;;) {
    const size_t at = text.find(marker, pos);
    if (at == std::string::npos) {
      out += text.substr(pos);
      return out;
    }
    out += text.substr(pos, at - pos);
    size_t end = at;
    int depth = 0;
    while (end < text.size()) {
      if (text[end] == '(') ++depth;
      if (text[end] == ')' && --depth == 0) break;
      ++end;
    }
    names->clear();
    std::istringstream is(
        text.substr(at + marker.size(), end - at - marker.size()));
    std::string word;
    while (is >> word) {
      // Strip list parens glued to the symbols: "(x" / "y)".
      std::string clean;
      for (char c : word)
        if (c != '(' && c != ')') clean += c;
      if (!clean.empty()) names->push_back(clean);
    }
    pos = end < text.size() ? end + 1 : end;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string backend = "z3";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--solver" && i + 1 < argc) {
      backend = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: smtcheck [--solver z3|bitblast] < query.smt2\n";
      return 0;
    } else {
      std::cerr << "smtcheck: unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (backend != "z3" && backend != "bitblast") {
    std::cerr << "smtcheck: unknown solver: " << backend << "\n";
    return 2;
  }

  std::ostringstream input;
  input << std::cin.rdbuf();
  std::vector<std::string> names;
  const std::string query = strip_get_value(input.str(), &names);

  smt::Context ctx;
  std::vector<smt::ExprRef> assertions;
  std::string error;
  if (!smt::parse_query(ctx, query, &assertions, &error)) {
    std::cout << "(error \"" << error << "\")\nunknown\n";
    return 0;
  }

  std::unique_ptr<smt::Solver> solver = backend == "z3"
                                            ? smt::make_z3_solver(ctx)
                                            : smt::make_bitblast_solver(ctx);
  smt::Assignment model;
  const smt::CheckResult result = solver->check(assertions, &model);
  std::cout << smt::check_result_name(result) << "\n";
  if (result == smt::CheckResult::kSat && !names.empty()) {
    std::cout << "(";
    bool first = true;
    for (const std::string& name : names) {
      smt::ExprRef var = ctx.lookup_var(name);
      if (!var) continue;
      if (!first) std::cout << " ";
      first = false;
      std::cout << "(" << name << " (_ bv" << model.get(var->var_id) << " "
                << static_cast<unsigned>(var->width) << "))";
    }
    std::cout << ")\n";
  }
  return 0;
}
