// Differential bug hunting: the methodology that found the five angr bugs
// (paper Sect. V-A), demonstrated end to end.
//
// The formal-spec concrete interpreter serves as the reference; the
// hand-written lifter (with one of the five real angr bugs injected,
// selectable on the command line) is executed instruction-by-instruction
// against it over random machine states. The harness localizes the
// mismatching instructions and prints a witness state — exactly the kind of
// report the paper's authors filed upstream.
//
//   bug_hunt [1|2|3|4|5|all|none]
#include <cstdio>
#include <cstring>
#include <map>

#include "baseline/ir_exec.hpp"
#include "interp/concrete.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "spec/registry.hpp"
#include "support/rng.hpp"

using namespace binsym;

namespace {

struct Witness {
  uint32_t word = 0;
  uint32_t rs1_value = 0;
  uint32_t rs2_value = 0;
  uint32_t spec_result = 0;
  uint32_t lifter_result = 0;
};

}  // namespace

int main(int argc, char** argv) {
  baseline::LifterBugs bugs;
  const char* selection = argc > 1 ? argv[1] : "all";
  if (!std::strcmp(selection, "1")) bugs.sra_as_logical = true;
  else if (!std::strcmp(selection, "2")) bugs.rtype_shift_uses_index = true;
  else if (!std::strcmp(selection, "3")) bugs.load_wrong_extension = true;
  else if (!std::strcmp(selection, "4")) bugs.itype_shamt_signed = true;
  else if (!std::strcmp(selection, "5")) bugs.signed_cmp_as_unsigned = true;
  else if (!std::strcmp(selection, "all")) bugs = baseline::LifterBugs::all();
  else if (!std::strcmp(selection, "none")) bugs = baseline::LifterBugs::none();
  else {
    std::fprintf(stderr, "usage: %s [1|2|3|4|5|all|none]\n", argv[0]);
    return 2;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  baseline::Lifter lifter(bugs);

  smt::Context ctx;
  core::SymMachine machine(ctx);
  std::vector<interp::SymValue> temps;
  Rng rng(0xbadc0de);

  std::map<std::string, Witness> mismatches;
  uint64_t cases = 0;

  for (const isa::OpcodeInfo& info : table.entries()) {
    if (info.format == isa::Format::kCsr || info.format == isa::Format::kSystem)
      continue;
    for (int round = 0; round < 200; ++round) {
      uint32_t word = info.match | (rng.next32() & ~info.mask);
      // Keep memory operands inside a small window.
      if (info.format == isa::Format::kS || info.format == isa::Format::kI)
        word = (word & 0x000fffff) | ((rng.next32() & 0x7f) << 20) | info.match;
      auto decoded = decoder.decode(word);
      if (!decoded || decoded->info->id != info.id) continue;
      ++cases;

      uint32_t regs[32] = {0};
      for (unsigned r = 1; r < 32; ++r) {
        regs[r] = rng.next32();
        if (rng.below(4) == 0) regs[r] = rng.below(64);  // small values too
      }
      constexpr uint32_t kPc = 0x4000, kBuf = 0x1000;
      bool mem_op = info.format == isa::Format::kS ||
                    (info.id >= isa::kLB && info.id <= isa::kLHU);
      if (mem_op && decoded->rs1() != 0)
        regs[decoded->rs1()] = kBuf + 64 + (rng.next32() & 63);

      core::ConcreteMemory image;
      for (uint32_t i = 0; i < 256; ++i)
        image.write8(kBuf + i, static_cast<uint8_t>(rng.next()));

      // Reference: the formal-spec interpreter.
      interp::Iss iss(decoder, registry);
      for (unsigned r = 1; r < 32; ++r)
        iss.machine().regs_[r] = interp::cval(regs[r], 32);
      iss.machine().pc_ = kPc;
      for (uint32_t i = 0; i < 256; ++i)
        iss.machine().memory_.write8(kBuf + i, image.read8(kBuf + i));
      iss.execute_one(*decoded);

      // Candidate: lifter + IR execution.
      smt::Assignment seed;
      core::PathTrace trace;
      machine.reset(image, kPc, 0, seed, trace);
      for (unsigned r = 1; r < 32; ++r)
        machine.write_register(r, interp::sval(regs[r], 32));
      auto block = lifter.lift(*decoded, kPc);
      if (!block) continue;
      machine.set_next_pc(kPc + 4);
      baseline::execute_block(*block, machine, temps);
      machine.advance();

      for (unsigned r = 0; r < 32; ++r) {
        uint32_t spec_value = static_cast<uint32_t>(iss.machine().regs_[r].v);
        uint32_t lifter_value =
            static_cast<uint32_t>(machine.read_register(r).conc);
        if (spec_value != lifter_value && !mismatches.count(info.name)) {
          mismatches[info.name] = Witness{word, regs[decoded->rs1()],
                                          regs[decoded->rs2()], spec_value,
                                          lifter_value};
        }
      }
      if (iss.machine().pc_ != machine.pc() && !mismatches.count(info.name)) {
        mismatches[info.name] =
            Witness{word, regs[decoded->rs1()], regs[decoded->rs2()],
                    iss.machine().pc_, machine.pc()};
      }
    }
  }

  std::printf("differential sweep: %llu cases, bug set '%s'\n",
              static_cast<unsigned long long>(cases), selection);
  if (mismatches.empty()) {
    std::printf("no divergence between the lifter and the formal spec\n");
    return bugs.any() ? 1 : 0;  // bugs enabled but not found would be a fail
  }
  std::printf("%zu instruction(s) diverge from the formal semantics:\n",
              mismatches.size());
  for (const auto& [name, w] : mismatches) {
    auto decoded = decoder.decode(w.word);
    std::printf(
        "  %-6s %-28s rs1=0x%08x rs2=0x%08x  spec=0x%08x lifter=0x%08x\n",
        name.c_str(),
        decoded ? isa::disassemble(*decoded, 0x4000).c_str() : "?",
        w.rs1_value, w.rs2_value, w.spec_result, w.lifter_result);
  }
  return bugs.any() ? 0 : 1;  // divergence without bugs would be a real bug
}
