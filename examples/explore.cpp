// explore: command-line driver — symbolically execute a shipped workload
// (or any RISC-V ELF produced by the in-tree assembler) with a chosen
// engine and print exploration statistics.
//
//   explore <workload|path.elf> [binsym|vp|binsec|angr|angr-buggy]
//           [--max-paths N] [--show-failures]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "../bench/engines.hpp"
#include "elf/elf32.hpp"

using namespace binsym;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <workload|file.elf> [engine] [--max-paths N] "
                 "[--show-failures]\n  engines: binsym (default), vp, "
                 "binsec, angr, angr-buggy\n",
                 argv[0]);
    return 2;
  }
  std::string target = argv[1];
  std::string engine_name = "binsym";
  uint64_t max_paths = UINT64_MAX;
  bool show_failures = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-paths") == 0 && i + 1 < argc) {
      max_paths = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--show-failures") == 0) {
      show_failures = true;
    } else {
      engine_name = argv[i];
    }
  }

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  // Custom instructions and runtime extensions participate in everything,
  // including this driver.
  spec::install_custom_madd(table, registry);
  spec::install_zbb(table, registry);

  core::Program program;
  if (target.size() > 4 && target.substr(target.size() - 4) == ".elf") {
    std::string error;
    auto image = elf::read_elf_file(target, &error);
    if (!image) {
      std::fprintf(stderr, "cannot load %s: %s\n", target.c_str(),
                   error.c_str());
      return 1;
    }
    program = elf::to_program(*image);
  } else {
    try {
      program = workloads::load_workload(table, target);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot load workload '%s': %s\n", target.c_str(),
                   e.what());
      return 1;
    }
  }

  bench::EngineSetup setup{decoder, registry, program};
  bench::EngineInstance engine;
  if (engine_name == "binsym") engine = bench::make_binsym(setup);
  else if (engine_name == "vp") engine = bench::make_vp(setup);
  else if (engine_name == "binsec") engine = bench::make_binsec(setup);
  else if (engine_name == "angr") engine = bench::make_angr(setup, baseline::LifterBugs::none());
  else if (engine_name == "angr-buggy") engine = bench::make_angr(setup, baseline::LifterBugs::all());
  else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }

  core::EngineOptions options;
  options.max_paths = max_paths;
  core::DseEngine dse(*engine.executor, smt::make_z3_solver(*engine.ctx),
                      options);
  core::EngineStats stats = dse.explore([&](const core::PathResult& path) {
    if (show_failures && !path.trace.failures.empty()) {
      for (const core::Failure& f : path.trace.failures) {
        std::printf("failure id=%u at pc=0x%x on path %llu, inputs:", f.id,
                    f.pc, static_cast<unsigned long long>(path.index));
        for (uint32_t var : path.trace.input_vars)
          std::printf(" %02x",
                      static_cast<unsigned>(path.seed.get(var) & 0xff));
        std::printf("\n");
      }
    }
  });

  std::printf(
      "engine=%s target=%s\n"
      "paths=%llu failures=%llu instructions=%llu seconds=%.3f\n"
      "flips: attempted=%llu feasible=%llu infeasible=%llu divergences=%llu\n"
      "solver[%s]: queries=%llu sat=%llu unsat=%llu cache-hits=%llu "
      "solve-time=%.3fs\n",
      engine.executor->name().c_str(), target.c_str(),
      static_cast<unsigned long long>(stats.paths),
      static_cast<unsigned long long>(stats.failures),
      static_cast<unsigned long long>(stats.instructions), stats.seconds,
      static_cast<unsigned long long>(stats.flip_attempts),
      static_cast<unsigned long long>(stats.feasible_flips),
      static_cast<unsigned long long>(stats.infeasible_flips),
      static_cast<unsigned long long>(stats.divergences),
      dse.solver().name().c_str(),
      static_cast<unsigned long long>(stats.solver.queries),
      static_cast<unsigned long long>(stats.solver.sat),
      static_cast<unsigned long long>(stats.solver.unsat),
      static_cast<unsigned long long>(stats.solver.cache_hits),
      stats.solver.solve_seconds);
  return 0;
}
