// explore: command-line driver — symbolically execute a shipped workload
// (or any RISC-V ELF produced by the in-tree assembler) with a chosen
// engine and print exploration statistics.
//
//   explore <workload|path.elf> [binsym|vp|binsec|angr|angr-buggy]
//           [--max-paths N] [--jobs N] [--search dfs|bfs|random|coverage]
//           [--no-incremental] [--no-slice] [--no-presolve] [--no-cache]
//           [--no-intern]
//           [--no-snapshot] [--snapshot-budget N] [--snapshot-interval N]
//           [--no-uop] [--uop-cache-size N]
//           [--solver z3|bitblast|pipe:CMD] [--query-timeout-ms N]
//           [--no-failover] [--portfolio] [--portfolio-backends LIST]
//           [--solver-store DIR]
//           [--deadline-secs N] [--memory-budget-mb N] [--fault-inject SPEC]
//           [--show-failures] [--oracles LIST] [--findings-dir DIR]
//           [--replay FILE] [--list-oracles] [--static-lint]
//           [--no-static-prune]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "../bench/engines.hpp"
#include "analysis/analysis.hpp"
#include "core/stats.hpp"
#include "elf/elf32.hpp"
#include "oracles/report.hpp"
#include "support/fault.hpp"

using namespace binsym;

namespace {

// Every flag listed here must be documented in docs/BENCHMARKS.md — CI's
// docs job diffs this help text against the docs.
void print_usage(std::FILE* out, const char* prog) {
  std::fprintf(
      out,
      "usage: %s <workload|file.elf> [engine] [options]\n"
      "  engines: binsym (default), vp, binsec, angr, angr-buggy\n"
      "  --max-paths N            stop after N explored paths\n"
      "  --jobs N                 worker count (1 = sequential)\n"
      "  --search dfs|bfs|random|coverage\n"
      "                           path-selection strategy\n"
      "  --no-incremental         disable incremental prefix solving\n"
      "  --no-slice               disable constraint-independence slicing\n"
      "  --no-presolve            disable the model-reuse pre-check\n"
      "  --no-cache               disable the per-worker query cache\n"
      "  --no-intern              disable expression hash-consing (legacy\n"
      "                           fresh-node-per-call allocator)\n"
      "  --no-snapshot            disable snapshot/fork execution (full\n"
      "                           replay per flip)\n"
      "  --snapshot-budget N      live checkpoints kept per worker\n"
      "  --snapshot-interval N    min branch records between checkpoints\n"
      "  --no-uop                 disable the micro-op block fast path\n"
      "                           (pure per-instruction spec interpretation)\n"
      "  --uop-cache-size N       cached micro-op blocks per worker\n"
      "  --solver NAME            primary SMT backend (default z3); one of\n"
      "                           z3, bitblast, pipe:CMD (external SMT-LIB\n"
      "                           solver command, e.g. 'pipe:z3 -in' — see\n"
      "                           docs/SOLVERS.md)\n"
      "  --query-timeout-ms N     per-solver-query deadline; a query that\n"
      "                           exceeds it returns unknown and the flip\n"
      "                           is skipped, never treated as infeasible\n"
      "  --no-failover            do not retry unknown/failed queries on\n"
      "                           the other backend\n"
      "  --portfolio              race the portfolio backends per query and\n"
      "                           keep the first definitive answer\n"
      "  --portfolio-backends LIST\n"
      "                           comma list of portfolio members, each one\n"
      "                           of z3, bitblast, pipe:CMD (default\n"
      "                           z3,bitblast; implies --portfolio)\n"
      "  --solver-store DIR       persistent content-addressed query/model\n"
      "                           store: load prior verdicts from\n"
      "                           DIR/store.bin, record new ones, flush at\n"
      "                           exit (see docs/SOLVERS.md)\n"
      "  --deadline-secs N        wall-clock budget for the exploration;\n"
      "                           the partial report is marked incomplete\n"
      "  --memory-budget-mb N     stop exploring when resident memory\n"
      "                           exceeds N MiB (partial report, as above)\n"
      "  --fault-inject SPEC      deterministic fault injection for testing\n"
      "                           (comma list of site@N / site@N+ /\n"
      "                           site@N:M; sites: solver, solver-throw,\n"
      "                           snapshot, alloc — see docs/ROBUSTNESS.md)\n"
      "  --show-failures          print report_fail events with inputs\n"
      "  --oracles LIST           enable bug-finding oracles: 'all' or a\n"
      "                           comma list (see --list-oracles and\n"
      "                           docs/ORACLES.md)\n"
      "  --findings-dir DIR       write findings.json + a replayable\n"
      "                           witness corpus into DIR (implies\n"
      "                           --oracles all unless --oracles is given)\n"
      "  --replay FILE            run the witness input FILE once,\n"
      "                           concretely, and print the detections it\n"
      "                           triggers (no exploration)\n"
      "  --list-oracles           print one oracle name per line and exit\n"
      "  --static-lint            print the load-time static lint findings\n"
      "                           (see docs/ANALYSIS.md and the analyze\n"
      "                           tool) before exploring\n"
      "  --no-static-prune        do not pre-prove oracle candidates with\n"
      "                           the static analysis (every candidate\n"
      "                           goes to the solver)\n"
      "  --help                   this text\n",
      prog);
}

/// Replay one witness file concretely: a single run under the recorded
/// input bytes, all requested oracles attached. Prints every concrete
/// detection; exits 0 when the replay triggered at least one.
int replay_witness(const std::string& engine, const bench::EngineSetup& setup,
                   const std::string& oracles_spec, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open witness %s\n", path.c_str());
    return 1;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());

  core::WorkerResources r = bench::build_worker(engine, setup,
                                                baseline::LifterBugs::none(),
                                                /*with_solver=*/false);
  std::string error;
  if (!bench::attach_oracles(engine, setup, oracles_spec, &r, &error)) {
    std::fprintf(stderr, "oracle setup failed: %s\n", error.c_str());
    return 1;
  }
  smt::Assignment seed = oracles::witness_seed(*r.ctx, bytes);
  core::PathTrace trace;
  r.executor->run(seed, trace);

  // A witness of the wrong length silently replays the wrong input (short
  // files zero-fill, long files have bytes ignored) — diagnose instead.
  if (bytes.size() != trace.input_vars.size()) {
    std::fprintf(stderr,
                 "witness %s is %zu byte(s) but the program consumed %zu "
                 "input byte(s): truncated or mismatched witness file\n",
                 path.c_str(), bytes.size(), trace.input_vars.size());
    return 1;
  }

  std::printf("replay %s: %zu input byte(s), exit=%s, %zu detection(s)\n",
              path.c_str(), bytes.size(), core::exit_reason_name(trace.exit),
              trace.oracle_hits.size());
  for (const core::OracleHit& hit : trace.oracle_hits)
    std::printf("  %s pc=0x%x depth=%u: %s\n",
                core::oracle_kind_name(hit.oracle), hit.pc, hit.call_depth,
                hit.detail.c_str());
  return trace.oracle_hits.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (std::strcmp(argv[i], "--list-oracles") == 0) {
      for (uint8_t k = 0;
           k < static_cast<uint8_t>(core::OracleKind::kNumOracleKinds); ++k)
        std::printf("%s\n",
                    core::oracle_kind_name(static_cast<core::OracleKind>(k)));
      return 0;
    }
  }
  if (argc < 2) {
    print_usage(stderr, argv[0]);
    return 2;
  }
  std::string target = argv[1];
  std::string engine_name = "binsym";
  core::EngineOptions options;
  core::MachineConfig mconfig;
  bench::RobustnessOptions robust;
  bool show_failures = false;
  bool static_lint = false;
  bool static_prune = true;
  std::string oracles_spec;
  std::string findings_dir;
  std::string replay_file;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-paths") == 0 && i + 1 < argc) {
      options.max_paths = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = bench::parse_jobs_arg(argv[++i]);
    } else if (std::strcmp(argv[i], "--search") == 0 && i + 1 < argc) {
      if (!bench::parse_search_arg(argv[++i], &options.search)) return 2;
    } else if (bench::parse_solver_opt_flag(argv[i], &options)) {
      // handled
    } else if (bench::parse_snapshot_flag(argc, argv, &i, &options)) {
      // handled
    } else if (bool ok;
               bench::parse_robustness_flag(argc, argv, &i, &robust, &options,
                                            &ok)) {
      if (!ok) return 2;
    } else if (std::strcmp(argv[i], "--solver-store") == 0 && i + 1 < argc) {
      options.solver_store = smt::SolverStore::open(argv[++i]);
      if (!options.solver_store->load_error().empty())
        std::fprintf(stderr,
                     "--solver-store: ignoring invalid %s (%s), starting "
                     "cold\n",
                     options.solver_store->path().c_str(),
                     options.solver_store->load_error().c_str());
    } else if (std::strcmp(argv[i], "--fault-inject") == 0 && i + 1 < argc) {
      std::string error;
      options.fault_plan = support::FaultPlan::parse(argv[++i], &error);
      if (!options.fault_plan) {
        std::fprintf(stderr, "--fault-inject: %s\n", error.c_str());
        return 2;
      }
    } else if (bench::parse_uop_flag(argc, argv, &i, &mconfig)) {
      // handled
    } else if (std::strcmp(argv[i], "--show-failures") == 0) {
      show_failures = true;
    } else if (std::strcmp(argv[i], "--static-lint") == 0) {
      static_lint = true;
    } else if (std::strcmp(argv[i], "--no-static-prune") == 0) {
      static_prune = false;
    } else if (std::strcmp(argv[i], "--oracles") == 0 && i + 1 < argc) {
      oracles_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--findings-dir") == 0 && i + 1 < argc) {
      findings_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_file = argv[++i];
    } else {
      engine_name = argv[i];
    }
  }
  // Detection campaigns and replays default to the full detector set.
  if (oracles_spec.empty() && (!findings_dir.empty() || !replay_file.empty()))
    oracles_spec = "all";
  if (!oracles_spec.empty()) {
    std::vector<core::OracleKind> kinds;
    std::string error;
    if (!oracles::OracleManager::parse_spec(oracles_spec, &kinds, &error)) {
      std::fprintf(stderr, "--oracles: %s\n", error.c_str());
      return 2;
    }
    // The lifter-based baselines execute IR, not the observed spec
    // machine; fail up front instead of aborting inside the worker
    // factory.
    if (engine_name != "binsym" && engine_name != "vp") {
      std::fprintf(stderr,
                   "--oracles: engine '%s' does not support execution "
                   "observers (use binsym or vp)\n",
                   engine_name.c_str());
      return 2;
    }
  }

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  // Custom instructions and runtime extensions participate in everything,
  // including this driver.
  spec::install_custom_madd(table, registry);
  spec::install_zbb(table, registry);

  core::Program program;
  if (target.size() > 4 && target.substr(target.size() - 4) == ".elf") {
    std::string error;
    auto image = elf::read_elf_file(target, &error);
    if (!image) {
      std::fprintf(stderr, "cannot load %s: %s\n", target.c_str(),
                   error.c_str());
      return 1;
    }
    program = elf::to_program(*image);
  } else {
    try {
      program = workloads::load_workload(table, target);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot load workload '%s': %s\n", target.c_str(),
                   e.what());
      return 1;
    }
  }

  bench::EngineSetup setup{decoder, registry, program, mconfig, robust};
  setup.intern_exprs = options.intern_exprs;
  if (!bench::known_engine(engine_name)) {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }
  if (!replay_file.empty())
    return replay_witness(engine_name, setup, oracles_spec, replay_file);

  // Static analysis (src/analysis) runs once at load time. The candidate
  // pre-prover is sound only for engines whose memory the static model
  // covers — vp MMIO loads return device values, so vp never gets it. CFG
  // hints for coverage scoring are wired whenever the analysis ran, and
  // independently of pruning (so prune on/off explores identical paths).
  std::optional<analysis::StaticAnalysis> sa;
  if ((static_lint || !oracles_spec.empty()) && engine_name == "binsym") {
    sa = analysis::StaticAnalysis::run(
        program, decoder, bench::make_memory_map(engine_name, setup));
    if (static_lint) {
      std::vector<core::Finding> lints = sa->lint(program, decoder);
      if (!sa->absint.complete)
        std::printf("static: fixpoint incomplete (%s), lint tier skipped\n",
                    sa->absint.incomplete_reason.c_str());
      for (const core::Finding& f : lints)
        std::printf("%s\n", oracles::finding_to_line(f).c_str());
    }
    if (!oracles_spec.empty() && static_prune)
      options.candidate_prune = sa->make_prune();
    options.cfg_hints = sa->make_hints();
  } else if (static_lint) {
    std::fprintf(stderr,
                 "--static-lint: engine '%s' is outside the static memory "
                 "model (use binsym)\n",
                 engine_name.c_str());
    return 2;
  }

  core::WorkerFactory factory =
      bench::make_worker_factory(engine_name, setup, oracles_spec);
  core::DseEngine dse(std::move(factory), options);
  core::EngineStats stats = dse.explore([&](const core::PathResult& path) {
    if (show_failures && !path.trace.failures.empty()) {
      for (const core::Failure& f : path.trace.failures) {
        std::printf("failure id=%u at pc=0x%x on path %llu, inputs:", f.id,
                    f.pc, static_cast<unsigned long long>(path.index));
        for (uint32_t var : path.trace.input_vars)
          std::printf(" %02x",
                      static_cast<unsigned>(path.seed.get(var) & 0xff));
        std::printf("\n");
      }
    }
  });

  std::printf("engine=%s target=%s search=%s\n%s", engine_name.c_str(),
              target.c_str(), core::search_kind_name(options.search),
              core::engine_stats_report(stats).c_str());

  if (!oracles_spec.empty()) {
    std::vector<core::Finding> findings = dse.findings();
    for (const core::Finding& finding : findings)
      std::printf("%s\n", oracles::finding_to_line(finding).c_str());
    if (!findings_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(findings_dir, ec);
      std::string error;
      if (ec || !oracles::write_findings_dir(findings_dir, target, engine_name,
                                             findings, &error)) {
        std::fprintf(stderr, "cannot write findings: %s\n",
                     ec ? ec.message().c_str() : error.c_str());
        return 1;
      }
      std::printf("wrote %zu finding(s) to %s/findings.json\n",
                  findings.size(), findings_dir.c_str());
    }
  }
  return 0;
}
