// explore: command-line driver — symbolically execute a shipped workload
// (or any RISC-V ELF produced by the in-tree assembler) with a chosen
// engine and print exploration statistics.
//
//   explore <workload|path.elf> [binsym|vp|binsec|angr|angr-buggy]
//           [--max-paths N] [--jobs N] [--search dfs|bfs|random|coverage]
//           [--no-incremental] [--no-slice] [--no-presolve] [--no-cache]
//           [--no-snapshot] [--snapshot-budget N] [--snapshot-interval N]
//           [--show-failures]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "../bench/engines.hpp"
#include "core/stats.hpp"
#include "elf/elf32.hpp"

using namespace binsym;

namespace {

// Every flag listed here must be documented in docs/BENCHMARKS.md — CI's
// docs job diffs this help text against the docs.
void print_usage(std::FILE* out, const char* prog) {
  std::fprintf(
      out,
      "usage: %s <workload|file.elf> [engine] [options]\n"
      "  engines: binsym (default), vp, binsec, angr, angr-buggy\n"
      "  --max-paths N            stop after N explored paths\n"
      "  --jobs N                 worker count (1 = sequential)\n"
      "  --search dfs|bfs|random|coverage\n"
      "                           path-selection strategy\n"
      "  --no-incremental         disable incremental prefix solving\n"
      "  --no-slice               disable constraint-independence slicing\n"
      "  --no-presolve            disable the model-reuse pre-check\n"
      "  --no-cache               disable the per-worker query cache\n"
      "  --no-snapshot            disable snapshot/fork execution (full\n"
      "                           replay per flip)\n"
      "  --snapshot-budget N      live checkpoints kept per worker\n"
      "  --snapshot-interval N    min branch records between checkpoints\n"
      "  --show-failures          print report_fail events with inputs\n"
      "  --help                   this text\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(stdout, argv[0]);
      return 0;
    }
  }
  if (argc < 2) {
    print_usage(stderr, argv[0]);
    return 2;
  }
  std::string target = argv[1];
  std::string engine_name = "binsym";
  core::EngineOptions options;
  bool show_failures = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-paths") == 0 && i + 1 < argc) {
      options.max_paths = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = bench::parse_jobs_arg(argv[++i]);
    } else if (std::strcmp(argv[i], "--search") == 0 && i + 1 < argc) {
      if (!bench::parse_search_arg(argv[++i], &options.search)) return 2;
    } else if (bench::parse_solver_opt_flag(argv[i], &options)) {
      // handled
    } else if (bench::parse_snapshot_flag(argc, argv, &i, &options)) {
      // handled
    } else if (std::strcmp(argv[i], "--show-failures") == 0) {
      show_failures = true;
    } else {
      engine_name = argv[i];
    }
  }

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  // Custom instructions and runtime extensions participate in everything,
  // including this driver.
  spec::install_custom_madd(table, registry);
  spec::install_zbb(table, registry);

  core::Program program;
  if (target.size() > 4 && target.substr(target.size() - 4) == ".elf") {
    std::string error;
    auto image = elf::read_elf_file(target, &error);
    if (!image) {
      std::fprintf(stderr, "cannot load %s: %s\n", target.c_str(),
                   error.c_str());
      return 1;
    }
    program = elf::to_program(*image);
  } else {
    try {
      program = workloads::load_workload(table, target);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot load workload '%s': %s\n", target.c_str(),
                   e.what());
      return 1;
    }
  }

  bench::EngineSetup setup{decoder, registry, program};
  core::WorkerFactory factory = bench::make_worker_factory(engine_name, setup);
  if (!factory) {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }

  core::DseEngine dse(std::move(factory), options);
  core::EngineStats stats = dse.explore([&](const core::PathResult& path) {
    if (show_failures && !path.trace.failures.empty()) {
      for (const core::Failure& f : path.trace.failures) {
        std::printf("failure id=%u at pc=0x%x on path %llu, inputs:", f.id,
                    f.pc, static_cast<unsigned long long>(path.index));
        for (uint32_t var : path.trace.input_vars)
          std::printf(" %02x",
                      static_cast<unsigned>(path.seed.get(var) & 0xff));
        std::printf("\n");
      }
    }
  });

  std::printf("engine=%s target=%s search=%s\n%s", engine_name.c_str(),
              target.c_str(), core::search_kind_name(options.search),
              core::engine_stats_report(stats).c_str());
  return 0;
}
