// Quickstart: assemble a tiny guest program, explore it symbolically with
// BinSym, and print every discovered path with a satisfying input.
//
// The guest reads one symbolic byte and classifies it with two branches;
// the engine should discover exactly three paths and print an example
// input for each.
#include <cstdio>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"

using namespace binsym;

namespace {

constexpr const char* kGuestSource = R"(
.text
_start:
    la a0, buf
    li a1, 1
    li a7, 2             # sym_input(buf, 1)
    ecall
    la t0, buf
    lbu t1, 0(t0)

    li t2, 'a'
    bltu t1, t2, low     # b < 'a'
    li t2, 'z'+1
    bgeu t1, t2, high    # b > 'z'
    li a0, 'L'           # lowercase letter
    j emit
low:
    li a0, '-'
    j emit
high:
    li a0, '+'
emit:
    li a7, 1             # putchar(a0)
    ecall
    li a0, 0
    li a7, 93            # exit(0)
    ecall

.data
buf: .space 1
)";

}  // namespace

int main() {
  // 1. The formal ISA specification: encodings + semantics.
  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  // 2. Build the guest binary with the in-tree assembler and ELF layer.
  rvasm::AsmResult assembled = rvasm::assemble_or_die(table, kGuestSource);
  std::vector<uint8_t> elf_bytes = elf::write_elf(assembled.image);
  auto image = elf::read_elf(elf_bytes);
  if (!image) {
    std::fprintf(stderr, "ELF round-trip failed\n");
    return 1;
  }
  core::Program program = elf::to_program(*image);

  // 3. Symbolic execution: BinSym executor + DFS DSE driver + Z3.
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::DseEngine engine(executor, smt::make_z3_solver(ctx));

  std::printf("exploring guest with one symbolic input byte...\n");
  core::EngineStats stats = engine.explore([&](const core::PathResult& path) {
    uint8_t input = static_cast<uint8_t>(
        path.seed.get(ctx.var("in_0", 8)->var_id));
    std::printf("  path %llu: input=0x%02x output=\"%s\" exit=%s\n",
                static_cast<unsigned long long>(path.index), input,
                path.trace.output.c_str(),
                core::exit_reason_name(path.trace.exit));
  });

  std::printf("paths=%llu solver-queries=%llu sat=%llu unsat=%llu\n",
              static_cast<unsigned long long>(stats.paths),
              static_cast<unsigned long long>(stats.solver.queries),
              static_cast<unsigned long long>(stats.solver.sat),
              static_cast<unsigned long long>(stats.solver.unsat));
  return stats.paths == 3 ? 0 : 1;
}
