// analyze: static binary analysis front-end — run the load-time analysis
// (src/analysis: CFG recovery + abstract-interpretation fixpoint) over a
// shipped workload or an assembled ELF without executing an instruction.
//
//   analyze <workload|path.elf> [--cfg-dot] [--lint] [--facts]
//
// With no mode flag it prints a one-paragraph summary (completeness, block
// and function counts, proof coverage per oracle family). See
// docs/ANALYSIS.md for what each layer computes and guarantees.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "../bench/engines.hpp"
#include "analysis/analysis.hpp"
#include "elf/elf32.hpp"
#include "isa/disasm.hpp"
#include "oracles/report.hpp"
#include "support/format.hpp"

using namespace binsym;

namespace {

// Every flag listed here must be documented in docs/ANALYSIS.md — CI's
// docs job (tools/check_docs.py) diffs this help text against the docs.
void print_usage(std::FILE* out, const char* prog) {
  std::fprintf(
      out,
      "usage: %s <workload|file.elf> [options]\n"
      "  --cfg-dot                print the recovered control-flow graph\n"
      "                           as Graphviz DOT (blocks with\n"
      "                           disassembly, call/return edges dashed)\n"
      "  --lint                   run the static lint tier and print its\n"
      "                           findings (unreachable blocks,\n"
      "                           unreachable reach() markers, stack\n"
      "                           imbalance, always-true asserts)\n"
      "  --facts                  print the per-instruction abstract facts\n"
      "                           (memory access ranges, divisors,\n"
      "                           overflow operands, assert conditions)\n"
      "  --help                   this text\n"
      "  default (no mode flag)   print an analysis summary\n",
      prog);
}

void print_summary(const analysis::StaticAnalysis& sa) {
  const analysis::AbsIntResult& r = sa.absint;
  std::printf("fixpoint: %s%s%s\n", r.complete ? "complete" : "incomplete",
              r.complete ? "" : " — ",
              r.complete ? "" : r.incomplete_reason.c_str());
  std::printf(
      "cfg: %zu block(s), %zu function(s), %zu instruction(s) reached\n",
      sa.cfg.blocks.size(), sa.cfg.function_entries.size(), r.states.size());
  std::printf("sites: %zu call, %zu return, %zu exit\n", r.call_sites.size(),
              r.ret_sites.size(), r.exit_sites.size());

  // Proof coverage: of the sites each oracle family instruments, how many
  // are statically proven safe (the candidates the engine will never have
  // to hand to the solver).
  size_t loads = 0, loads_safe = 0, stores = 0, stores_safe = 0;
  size_t aligned_safe = 0, aligned_total = 0;
  for (const auto& [pc, fact] : sa.facts.mem) {
    (fact.store ? stores : loads) += 1;
    core::OracleKind oob = fact.store ? core::OracleKind::kOobStore
                                      : core::OracleKind::kOobLoad;
    if (sa.facts.proves_safe(oob, pc)) (fact.store ? stores_safe : loads_safe) += 1;
    if (fact.bytes > 1) {
      ++aligned_total;
      if (sa.facts.proves_safe(core::OracleKind::kUnaligned, pc))
        ++aligned_safe;
    }
  }
  size_t div_safe = 0;
  for (const auto& [pc, d] : sa.facts.divisor)
    if (sa.facts.proves_safe(core::OracleKind::kDivByZero, pc)) ++div_safe;
  size_t arith_safe = 0;
  for (const auto& [pc, a] : sa.facts.arith)
    if (sa.facts.proves_safe(core::OracleKind::kOverflow, pc)) ++arith_safe;
  size_t assert_safe = 0;
  for (const auto& [pc, c] : sa.facts.assert_cond)
    if (sa.facts.proves_safe(core::OracleKind::kAssertFail, pc)) ++assert_safe;

  std::printf("proven safe: loads %zu/%zu, stores %zu/%zu, alignment %zu/%zu, "
              "divisions %zu/%zu, overflow %zu/%zu, asserts %zu/%zu\n",
              loads_safe, loads, stores_safe, stores, aligned_safe,
              aligned_total, div_safe, sa.facts.divisor.size(), arith_safe,
              sa.facts.arith.size(), assert_safe, sa.facts.assert_cond.size());
}

void print_facts(const analysis::StaticAnalysis& sa) {
  // One line per instruction that carries a fact, in address order.
  std::vector<uint32_t> pcs;
  for (const auto& [pc, s] : sa.absint.states) pcs.push_back(pc);
  std::sort(pcs.begin(), pcs.end());
  for (uint32_t pc : pcs) {
    std::string line;
    if (auto it = sa.facts.mem.find(pc); it != sa.facts.mem.end()) {
      line += strprintf(" %s%u addr=%s",
                        it->second.store ? "store" : "load", it->second.bytes,
                        analysis::abs_to_string(it->second.addr).c_str());
      core::OracleKind oob = it->second.store ? core::OracleKind::kOobStore
                                              : core::OracleKind::kOobLoad;
      if (sa.facts.proves_safe(oob, pc)) line += " in-bounds";
      if (it->second.bytes > 1 &&
          sa.facts.proves_safe(core::OracleKind::kUnaligned, pc))
        line += " aligned";
    }
    if (auto it = sa.facts.divisor.find(pc); it != sa.facts.divisor.end()) {
      line += strprintf(" divisor=%s",
                        analysis::abs_to_string(it->second).c_str());
      if (sa.facts.proves_safe(core::OracleKind::kDivByZero, pc))
        line += " nonzero";
    }
    if (auto it = sa.facts.arith.find(pc); it != sa.facts.arith.end()) {
      for (const analysis::ArithFact& f : it->second)
        line += strprintf(" %s%c%s", analysis::abs_to_string(f.a).c_str(),
                          f.op, analysis::abs_to_string(f.b).c_str());
      if (sa.facts.proves_safe(core::OracleKind::kOverflow, pc))
        line += " no-overflow";
    }
    if (auto it = sa.facts.assert_cond.find(pc);
        it != sa.facts.assert_cond.end()) {
      line += strprintf(" assert=%s",
                        analysis::abs_to_string(it->second).c_str());
      if (sa.facts.proves_safe(core::OracleKind::kAssertFail, pc))
        line += " never-fails";
    }
    if (sa.facts.reach_sites.count(pc)) line += " reach-site";
    if (line.empty()) continue;
    auto code = sa.absint.code.find(pc);
    std::printf("0x%08x  %-28s %s\n", pc,
                code != sa.absint.code.end()
                    ? isa::disassemble(code->second, pc).c_str()
                    : "?",
                line.c_str() + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool cfg_dot = false, lint = false, facts = false;
  std::string target;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (std::strcmp(argv[i], "--cfg-dot") == 0) {
      cfg_dot = true;
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--facts") == 0) {
      facts = true;
    } else if (target.empty()) {
      target = argv[i];
    } else {
      print_usage(stderr, argv[0]);
      return 2;
    }
  }
  if (target.empty()) {
    print_usage(stderr, argv[0]);
    return 2;
  }

  // Same front-end as explore: full opcode table including the custom
  // madd and Zbb extensions, so analyze sees the bytes the engine runs.
  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  spec::install_custom_madd(table, registry);
  spec::install_zbb(table, registry);

  core::Program program;
  if (target.size() > 4 && target.substr(target.size() - 4) == ".elf") {
    std::string error;
    auto image = elf::read_elf_file(target, &error);
    if (!image) {
      std::fprintf(stderr, "cannot load %s: %s\n", target.c_str(),
                   error.c_str());
      return 1;
    }
    program = elf::to_program(*image);
  } else {
    try {
      program = workloads::load_workload(table, target);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot load workload '%s': %s\n", target.c_str(),
                   e.what());
      return 1;
    }
  }

  bench::EngineSetup setup{decoder, registry, program};
  analysis::StaticAnalysis sa = analysis::StaticAnalysis::run(
      program, decoder, bench::make_memory_map("binsym", setup));

  if (cfg_dot) {
    std::fputs(cfg_to_dot(sa.cfg, sa.absint).c_str(), stdout);
    return 0;
  }
  if (lint) {
    if (!sa.absint.complete) {
      std::printf("static: fixpoint incomplete (%s), lint tier skipped\n",
                  sa.absint.incomplete_reason.c_str());
      return 0;
    }
    std::vector<core::Finding> lints = sa.lint(program, decoder);
    for (const core::Finding& f : lints)
      std::printf("%s\n", oracles::finding_to_line(f).c_str());
    std::printf("%zu lint finding(s)\n", lints.size());
    return 0;
  }
  if (facts) {
    print_facts(sa);
    return 0;
  }
  print_summary(sa);
  return 0;
}
