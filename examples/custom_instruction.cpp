// The paper's Sect. IV case study, as a runnable walkthrough: add a custom
// MADD instruction (rd = rs1*rs2 + rs3) to the entire toolchain with
//   (1) the 7-line riscv-opcodes encoding description (Fig. 3), and
//   (2) the 7-line formal semantics (Fig. 4),
// then assemble, disassemble, concretely execute and symbolically execute
// a kernel that uses it — with zero changes to any engine.
#include <cstdio>

#include "core/engine.hpp"
#include "dsl/pretty.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "smt/smtlib.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "workloads/workloads.hpp"

using namespace binsym;

int main() {
  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::printf("=== 1. the Fig. 3 encoding description ===\n%s\n",
              spec::madd_opcode_description());

  auto madd_id = spec::install_custom_madd(table, registry);
  if (!madd_id) {
    std::fprintf(stderr, "MADD registration failed\n");
    return 1;
  }
  const isa::OpcodeInfo& info = table.by_id(*madd_id);
  std::printf("registered: %s mask=0x%x match=0x%x format=%s ext=%s\n\n",
              info.name.c_str(), info.mask, info.match,
              isa::format_name(info.format), info.extension.c_str());

  std::printf("=== 2. the Fig. 4 formal semantics ===\n%s\n",
              dsl::pretty_semantics("MADD", *registry.get(*madd_id)).c_str());

  // Decoder + disassembler pick the instruction up automatically.
  uint32_t word = 0x2000043 | (10u << 7) | (11u << 15) | (12u << 20) |
                  (13u << 27);  // madd a0, a1, a2, a3
  std::printf("=== 3. decode/disassemble 0x%08x ===\n%s\n\n", word,
              isa::disassemble_word(decoder, word).c_str());

  // ... and so does the SE engine: explore the madd-kernel workload, which
  // branches on x*x + x == 30 over a symbolic byte x.
  std::printf("=== 4. symbolic execution of the MADD kernel ===\n");
  core::Program program = workloads::load_workload_or_exit(table, "madd-kernel");
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::DseEngine engine(executor, smt::make_z3_solver(ctx));
  bool solved = false;
  core::EngineStats stats = engine.explore([&](const core::PathResult& path) {
    uint8_t x = static_cast<uint8_t>(path.seed.get(path.trace.input_vars[0]));
    std::printf("  path %llu: x=%3u output=\"%s\"",
                static_cast<unsigned long long>(path.index), x,
                path.trace.output.c_str());
    if (path.trace.output == "!") {
      std::printf("   <- engine solved x*x + x == 30");
      solved = true;
    }
    std::printf("\n");
    if (!path.trace.branches.empty()) {
      std::printf("  branch condition (SMT-LIB): %s\n",
                  smt::to_smtlib(ctx, path.trace.branches.back().cond).c_str());
    }
  });
  std::printf("paths=%llu — no engine, interpreter or solver code was "
              "modified for MADD\n",
              static_cast<unsigned long long>(stats.paths));
  return solved ? 0 : 1;
}
