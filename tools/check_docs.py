#!/usr/bin/env python3
"""Documentation consistency checker (CI `docs` job).

Four checks, all hard failures:

1. Intra-repo markdown links. Every relative link target in the repo's
   markdown files must resolve to an existing file (anchors are validated
   against the target file's headings, GitHub-slug style). External links
   (http/https/mailto) are ignored; so is anything inside fenced code
   blocks.

2. `explore --help` flag coverage. Every `--flag` the explore CLI
   advertises must be documented in docs/BENCHMARKS.md, so the CLI can
   never grow an undocumented knob. With --analyze, the same check runs
   for the analyze CLI against docs/ANALYSIS.md.

3. Oracle reference coverage (with --explore). Every oracle `explore
   --list-oracles` reports must have a "## `name`" section in
   docs/ORACLES.md, and every such section must name a real oracle — the
   reference can neither rot nor invent detectors.

4. USER_GUIDE quickstart (with --run-quickstart). Every fenced `sh` block
   in docs/USER_GUIDE.md is executed verbatim from the repository root,
   in order, failing on the first non-zero exit — the tutorial's commands
   must actually work against the build tree.

Usage:
    tools/check_docs.py [--explore build/explore] [--analyze build/analyze]
                        [--run-quickstart]

Run from anywhere; paths are resolved relative to the repository root
(the parent of this script's directory).
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
# Directories never scanned for markdown.
EXCLUDED_DIRS = {".git", "build", ".claude"}

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")
# An oracle section in docs/ORACLES.md: a level-2 heading whose entire
# text is one backticked name.
ORACLE_HEADING_RE = re.compile(r"^##\s+`([a-z0-9-]+)`\s*$")


def markdown_files():
    for path in sorted(REPO.rglob("*.md")):
        if any(part in EXCLUDED_DIRS for part in path.relative_to(REPO).parts):
            continue
        yield path


def strip_code_blocks(text):
    """Drop fenced code blocks so example snippets don't register links."""
    kept, fenced = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            kept.append(line)
    return kept


def github_slug(heading):
    """GitHub's heading-to-anchor slug: lowercase, spaces to hyphens,
    punctuation (except hyphens/underscores) removed."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(md_path):
    anchors = set()
    for line in strip_code_blocks(md_path.read_text(encoding="utf-8")):
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(1)))
    return anchors


def check_links():
    errors = []
    for md in markdown_files():
        rel = md.relative_to(REPO)
        for line in strip_code_blocks(md.read_text(encoding="utf-8")):
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                    continue
                path_part, _, anchor = target.partition("#")
                dest = md if not path_part else (md.parent / path_part)
                try:
                    dest = dest.resolve()
                    dest.relative_to(REPO)
                except ValueError:
                    errors.append(f"{rel}: link escapes the repo: {target}")
                    continue
                if not dest.exists():
                    errors.append(f"{rel}: broken link: {target}")
                    continue
                if anchor and dest.suffix == ".md":
                    if anchor not in anchors_of(dest):
                        errors.append(f"{rel}: broken anchor: {target}")
    return errors


def check_cli_flags(binary, doc_name):
    """Every `--flag` in `binary --help` must appear in docs/<doc_name>."""
    result = subprocess.run([binary, "--help"], capture_output=True,
                            text=True, timeout=60)
    if result.returncode != 0:
        return [f"{binary} --help exited {result.returncode}"]
    advertised = sorted(set(FLAG_RE.findall(result.stdout)))
    if not advertised:
        return [f"{binary} --help advertised no flags (bad parse?)"]
    documented = (REPO / "docs" / doc_name).read_text(encoding="utf-8")
    return [
        f"docs/{doc_name}: flag not documented: {flag}"
        for flag in advertised
        if flag not in documented
    ]


def check_oracle_reference(explore_binary):
    """docs/ORACLES.md sections <-> `explore --list-oracles`, both ways."""
    result = subprocess.run([explore_binary, "--list-oracles"],
                            capture_output=True, text=True, timeout=60)
    if result.returncode != 0:
        return [f"{explore_binary} --list-oracles exited {result.returncode}"]
    advertised = {line.strip() for line in result.stdout.splitlines()
                  if line.strip()}
    if not advertised:
        return [f"{explore_binary} --list-oracles printed nothing"]
    doc = REPO / "docs" / "ORACLES.md"
    documented = set()
    for line in strip_code_blocks(doc.read_text(encoding="utf-8")):
        match = ORACLE_HEADING_RE.match(line)
        if match:
            documented.add(match.group(1))
    errors = [f"docs/ORACLES.md: oracle not documented: {name}"
              for name in sorted(advertised - documented)]
    errors += [f"docs/ORACLES.md: section for unknown oracle: {name}"
               for name in sorted(documented - advertised)]
    return errors


def check_robustness_doc(explore_binary):
    """docs/ROBUSTNESS.md must document every robustness flag and every
    fault-injection site the binary implements. The site list is recovered
    from the CLI's own bad-spec diagnostic, so the doc tracks the code,
    not a hardcoded list in this checker."""
    doc = (REPO / "docs" / "ROBUSTNESS.md").read_text(encoding="utf-8")
    errors = []
    for flag in ("--solver", "--query-timeout-ms", "--no-failover",
                 "--deadline-secs", "--memory-budget-mb", "--fault-inject"):
        if flag not in doc:
            errors.append(f"docs/ROBUSTNESS.md: flag not documented: {flag}")
    result = subprocess.run(
        [explore_binary, "bubble-sort", "--fault-inject", "bogus-site@1"],
        capture_output=True, text=True, timeout=60)
    match = re.search(r"want ([a-z, -]+?)\)", result.stderr + result.stdout)
    if not match:
        return errors + [f"{explore_binary}: could not recover the fault-site "
                         f"list from the --fault-inject diagnostic"]
    for site in re.split(r",\s*|\s+or\s+", match.group(1)):
        if f"`{site}`" not in doc:
            errors.append(
                f"docs/ROBUSTNESS.md: fault site not documented: {site}")
    return errors


def check_solvers_doc(explore_binary):
    """docs/SOLVERS.md must document the portfolio/store flags and every
    backend the binary offers as a portfolio member. The backend list is
    recovered from the CLI's own --portfolio-backends help text, so the
    doc tracks the code, not a hardcoded roster in this checker."""
    doc = (REPO / "docs" / "SOLVERS.md").read_text(encoding="utf-8")
    errors = []
    for flag in ("--solver", "--portfolio", "--portfolio-backends",
                 "--solver-store"):
        if flag not in doc:
            errors.append(f"docs/SOLVERS.md: flag not documented: {flag}")
    result = subprocess.run([explore_binary, "--help"], capture_output=True,
                            text=True, timeout=60)
    help_text = result.stdout + result.stderr
    match = re.search(
        r"--portfolio-backends.*?each one\s+of\s+(.+?)\s*\(default",
        help_text, re.DOTALL)
    if not match:
        return errors + [f"{explore_binary}: could not recover the backend "
                         f"list from the --portfolio-backends help text"]
    backends = [b.strip() for b in re.split(r",\s*", match.group(1))
                if b.strip()]
    if not backends:
        return errors + [f"{explore_binary}: --portfolio-backends help "
                         f"listed no backends (bad parse?)"]
    for backend in backends:
        if f"`{backend}`" not in doc:
            errors.append(
                f"docs/SOLVERS.md: backend not documented: {backend}")
    return errors


def quickstart_blocks():
    """The fenced `sh` blocks of docs/USER_GUIDE.md, in order."""
    blocks, current, in_sh = [], [], False
    guide = REPO / "docs" / "USER_GUIDE.md"
    for line in guide.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if in_sh and FENCE_RE.match(stripped):
            blocks.append("\n".join(current))
            current, in_sh = [], False
        elif in_sh:
            current.append(line)
        elif stripped in ("```sh", "~~~sh"):
            in_sh = True
    return blocks


def run_quickstart():
    """Execute the USER_GUIDE quickstart verbatim from the repo root."""
    blocks = quickstart_blocks()
    if not blocks:
        return ["docs/USER_GUIDE.md: no fenced sh blocks found (bad parse?)"]
    errors = []
    for index, block in enumerate(blocks):
        print(f"quickstart block {index + 1}/{len(blocks)}:\n{block}")
        result = subprocess.run(["bash", "-e", "-o", "pipefail", "-c", block],
                                cwd=REPO, timeout=600)
        if result.returncode != 0:
            errors.append(f"docs/USER_GUIDE.md: quickstart block "
                          f"{index + 1} exited {result.returncode}: {block!r}")
            break  # later blocks depend on earlier ones
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--explore", metavar="BINARY",
                        help="path to the built explore example; enables the "
                             "flag-coverage and oracle-reference checks")
    parser.add_argument("--analyze", metavar="BINARY",
                        help="path to the built analyze example; enables its "
                             "flag-coverage check against docs/ANALYSIS.md")
    parser.add_argument("--run-quickstart", action="store_true",
                        help="execute docs/USER_GUIDE.md's fenced sh blocks "
                             "against the build tree")
    args = parser.parse_args()

    errors = check_links()
    if args.explore:
        errors += check_cli_flags(args.explore, "BENCHMARKS.md")
        errors += check_oracle_reference(args.explore)
        errors += check_robustness_doc(args.explore)
        errors += check_solvers_doc(args.explore)
    else:
        print("note: --explore not given, skipping the flag-coverage and "
              "oracle-reference checks")
    if args.analyze:
        errors += check_cli_flags(args.analyze, "ANALYSIS.md")
    else:
        print("note: --analyze not given, skipping its flag-coverage check")
    if args.run_quickstart:
        errors += run_quickstart()

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    print(f"check_docs: {len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
