// Ablation: micro-op block compilation vs per-instruction spec walking.
//
// The interpreters classically walk the formal semantics AST for every
// retired instruction; the micro-op layer (interp/uop.hpp) lowers
// straight-line runs once into flat blocks and executes them with threaded
// dispatch. This harness measures both halves of that claim:
//
//   1. Micro throughput: a tight concrete loop and its taint-tracking twin,
//      interpreted with the fast path off and on. The concrete speedup must
//      reach 3.0x (the subsystem's acceptance bar) — the harness exits
//      non-zero below it.
//   2. Table I explorations: the binsym engine over every evaluation
//      workload with the fast path off and on. Path counts are checked for
//      drift (the fast path may only change cost, never the explored path
//      set); wall-clock and the uop counters are reported.
//
// Each row is emitted as a JSON line into BENCH_interp.json (cwd), the
// trajectory file CI's perf-smoke step archives.
//
//   bench_ablation_interp [--quick] [--jobs N]
//
// --quick caps paths per exploration and shortens the micro loops (CI
// smoke); scheduling is identical with the fast path on and off, so the
// drift check stays exact even under a path budget.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "asm/assembler.hpp"
#include "elf/elf32.hpp"
#include "engines.hpp"
#include "interp/concrete.hpp"
#include "interp/taint.hpp"

using namespace binsym;

namespace {

constexpr const char* kLoopSource = R"(
_start:
    li t0, %ITER%
loop:
    addi t1, t1, 3
    slli t2, t1, 4
    xor t3, t2, t1
    sltu t4, t3, t2
    add t5, t5, t4
    mul t6, t5, t3
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
)";

std::string loop_source(unsigned iterations) {
  std::string source = kLoopSource;
  size_t pos = source.find("%ITER%");
  source.replace(pos, 6, std::to_string(iterations));
  return source;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct MicroResult {
  uint64_t instructions = 0;
  double seconds = 0;
  double instr_per_sec = 0;
};

/// Run `run_once` (which returns retired instructions) repeatedly for at
/// least `min_seconds`, returning aggregate throughput.
template <typename F>
MicroResult measure(F run_once, double min_seconds) {
  MicroResult r;
  auto start = std::chrono::steady_clock::now();
  do {
    r.instructions += run_once();
    r.seconds = seconds_since(start);
  } while (r.seconds < min_seconds);
  r.instr_per_sec = r.instructions / r.seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = bench::parse_jobs_arg(argv[++i]);
    }
  }
  const uint64_t max_paths = quick ? 400 : UINT64_MAX;
  const double min_seconds = quick ? 0.2 : 1.0;
  const unsigned loop_iterations = quick ? 20'000 : 200'000;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::FILE* json = std::fopen("BENCH_interp.json", "w");
  int failures = 0;
  auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };

  // -- Part 1: interpreter micro throughput. --------------------------------

  std::printf(
      "ABLATION: MICRO-OP BLOCK COMPILATION — spec walk vs threaded "
      "dispatch%s\n\n",
      quick ? " (quick)" : "");

  rvasm::AsmResult assembled =
      rvasm::assemble_or_die(table, loop_source(loop_iterations));

  auto concrete_once = [&](bool uop) {
    interp::Iss iss(decoder, registry, uop);
    for (const elf::Segment& seg : assembled.image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                     seg.bytes[i]);
    iss.machine().pc_ = assembled.image.entry;
    return iss.run();
  };
  auto taint_once = [&](bool uop) {
    interp::TaintTracker tracker(decoder, registry, uop);
    for (const elf::Segment& seg : assembled.image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        tracker.machine().memory_[seg.addr + static_cast<uint32_t>(i)] =
            seg.bytes[i];
    tracker.machine().pc_ = assembled.image.entry;
    return tracker.run(100'000'000);
  };

  std::printf("%-10s %-6s %14s %10s %9s\n", "Interp", "config", "instructions",
              "instr/s", "speedup");
  struct MicroRow {
    const char* name;
    double min_speedup;  // acceptance bar (0 = report only)
  };
  for (const MicroRow& row : {MicroRow{"concrete", 3.0}, MicroRow{"taint", 0}}) {
    const bool concrete = std::strcmp(row.name, "concrete") == 0;
    MicroResult spec = measure(
        [&] { return concrete ? concrete_once(false) : taint_once(false); },
        min_seconds);
    MicroResult block = measure(
        [&] { return concrete ? concrete_once(true) : taint_once(true); },
        min_seconds);
    double speedup = block.instr_per_sec / spec.instr_per_sec;
    bool below_bar = row.min_speedup > 0 && speedup < row.min_speedup;
    if (below_bar) ++failures;
    std::printf("%-10s %-6s %14llu %10.0f %8.2fx%s\n", row.name, "spec",
                u(spec.instructions), spec.instr_per_sec, 1.0, "");
    std::printf("%-10s %-6s %14llu %10.0f %8.2fx%s\n", row.name, "block",
                u(block.instructions), block.instr_per_sec, speedup,
                below_bar ? "  <- BELOW 3.0x BAR" : "");
    if (json) {
      std::fprintf(json,
                   "{\"bench\":\"micro\",\"interp\":\"%s\",\"quick\":%s,"
                   "\"spec_instr_per_sec\":%.0f,\"block_instr_per_sec\":%.0f,"
                   "\"speedup\":%.3f,\"min_speedup\":%.1f}\n",
                   row.name, quick ? "true" : "false", spec.instr_per_sec,
                   block.instr_per_sec, speedup, row.min_speedup);
    }
  }

  // -- Part 2: Table I explorations, fast path off vs on. -------------------

  std::printf("\n%-16s %-6s %8s %12s %8s %9s %8s %8s %7s %8s\n", "Benchmark",
              "config", "paths", "instructions", "speedup", "seconds",
              "blocks", "hits", "bails", "invalid");
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads()) {
    core::Program program = workloads::load_workload_or_exit(table, info.name);

    uint64_t spec_paths = 0;
    double spec_seconds = 0;
    for (bool uop : {false, true}) {
      core::MachineConfig mconfig;
      mconfig.uop_fastpath = uop;
      bench::EngineSetup setup{decoder, registry, program, mconfig};
      core::EngineOptions options;
      options.max_paths = max_paths;
      options.jobs = jobs;
      core::EngineStats s = bench::explore_parallel("binsym", setup, options);

      if (!uop) {
        spec_paths = s.paths;
        spec_seconds = s.seconds;
      }
      if (s.paths != spec_paths) ++failures;
      double speedup = s.seconds > 0 ? spec_seconds / s.seconds : 0.0;
      std::printf(
          "%-16s %-6s %8llu %12llu %7.2fx %9.3f %8llu %8llu %7llu %8llu%s\n",
          info.name.c_str(), uop ? "block" : "spec", u(s.paths),
          u(s.instructions), speedup, s.seconds, u(s.uop_blocks_compiled),
          u(s.uop_cache_hits), u(s.uop_guard_bails), u(s.uop_invalidations),
          s.paths != spec_paths ? "  <- PATH-COUNT DRIFT" : "");
      if (json) {
        std::fprintf(
            json,
            "{\"bench\":\"table1\",\"workload\":\"%s\",\"config\":\"%s\","
            "\"quick\":%s,\"jobs\":%u,\"paths\":%llu,\"instructions\":%llu,"
            "\"speedup_seconds\":%.3f,\"seconds\":%.6f,"
            "\"uop_blocks_compiled\":%llu,\"uop_cache_hits\":%llu,"
            "\"uop_guard_bails\":%llu,\"uop_invalidations\":%llu,"
            "\"pages_clean_skipped\":%llu}\n",
            info.name.c_str(), uop ? "block" : "spec",
            quick ? "true" : "false", jobs, u(s.paths), u(s.instructions),
            speedup, s.seconds, u(s.uop_blocks_compiled), u(s.uop_cache_hits),
            u(s.uop_guard_bails), u(s.uop_invalidations),
            u(s.pages_clean_skipped));
      }
    }
  }
  if (json) std::fclose(json);

  std::printf(
      "\nNotes: the micro rows pin raw interpreter throughput (the concrete "
      "block path must clear 3.0x over the spec walk); the Table I rows show "
      "what survives end-to-end, where solver time and symbolic branches "
      "(which bail to the spec path) dilute the win. Path counts must not "
      "move between configs. JSON lines: BENCH_interp.json\n");
  if (failures) {
    std::printf("FAIL: %d check(s) failed (speedup bar or path drift)\n",
                failures);
    return 1;
  }
  return 0;
}
