// Ablation: solver backends on engine-generated queries.
//
// Z3 (the paper's solver) versus the in-tree bit-blasting backend
// (Tseitin + CDCL), both behind the same query cache, driving the same
// BinSym exploration. Checks that path counts are backend-independent and
// reports the cost difference, justifying the paper's choice to hold the
// solver fixed across engines.
#include <cstdio>
#include <cstring>

#include "engines.hpp"

using namespace binsym;

namespace {

struct Run {
  uint64_t paths = 0;
  uint64_t queries = 0;
  double solver_seconds = 0;
  double total_seconds = 0;
};

Run explore_with(bench::EngineInstance& engine,
                 std::unique_ptr<smt::Solver> solver, uint64_t max_paths) {
  core::EngineOptions options;
  options.max_paths = max_paths;
  core::DseEngine dse(*engine.executor, std::move(solver), options);
  core::EngineStats stats = dse.explore();
  return Run{stats.paths, stats.solver.queries, stats.solver.solve_seconds,
             stats.seconds};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  uint64_t max_paths = quick ? 60 : 250;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::printf("ABLATION: SOLVER BACKEND (BinSym engine, %llu-path budget)\n",
              static_cast<unsigned long long>(max_paths));
  std::printf("%-16s %-16s %8s %9s %10s %10s\n", "Benchmark", "backend",
              "paths", "queries", "solver(s)", "total(s)");

  bool counts_agree = true;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads()) {
    core::Program program = workloads::load_workload_or_exit(table, info.name);
    bench::EngineSetup setup{decoder, registry, program};

    bench::EngineInstance z3_engine = bench::make_binsym(setup);
    Run z3_run =
        explore_with(z3_engine, smt::make_z3_solver(*z3_engine.ctx), max_paths);

    bench::EngineInstance bb_engine = bench::make_binsym(setup);
    Run bb_run = explore_with(
        bb_engine, smt::make_bitblast_solver(*bb_engine.ctx), max_paths);

    auto row = [&](const char* backend, const Run& r) {
      std::printf("%-16s %-16s %8llu %9llu %10.3f %10.3f\n",
                  info.name.c_str(), backend,
                  static_cast<unsigned long long>(r.paths),
                  static_cast<unsigned long long>(r.queries),
                  r.solver_seconds, r.total_seconds);
    };
    row("z3", z3_run);
    row("bitblast+cdcl", bb_run);
    counts_agree = counts_agree && z3_run.paths == bb_run.paths;
  }

  std::printf("\npath counts backend-independent: %s\n",
              counts_agree ? "yes" : "NO (bug!)");
  return counts_agree ? 0 : 1;
}
