// Regenerates Fig. 6: "Total execution time as an arithmetic mean over
// five executions per benchmark" (paper Sect. V-B).
//
// Engines (fixed lifter everywhere, as the paper benchmarks the *fixed*
// angr): BINSEC-like, BinSym, SymEx-VP-like, angr-like. Every engine runs
// the same DFS driver and the same Z3 backend, so solver time is identical
// by construction ("configured to use the same version of Z3 to avoid
// benchmarking the solver"); the interesting signal is the engine
// execution time, reported alongside the totals. Expected shape, from the
// paper: binsec < binsym < symex-vp < angr on every benchmark.
//
// Reps default to 1 (paper: 5); override with BINSYM_FIG6_REPS. Pass
// --quick to cap path counts for a fast smoke run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "engines.hpp"

using namespace binsym;

namespace {

struct Measurement {
  double total_seconds = 0;
  double solver_seconds = 0;
  uint64_t paths = 0;
  double exec_seconds() const { return total_seconds - solver_seconds; }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  int reps = 1;
  if (const char* env = std::getenv("BINSYM_FIG6_REPS")) reps = std::atoi(env);
  if (reps < 1) reps = 1;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  struct EngineDef {
    const char* label;
    bench::EngineInstance (*make)(const bench::EngineSetup&);
  };
  const EngineDef engines[] = {
      {"BinSec", [](const bench::EngineSetup& s) { return bench::make_binsec(s); }},
      {"BinSym", [](const bench::EngineSetup& s) { return bench::make_binsym(s); }},
      {"SymEx-VP", [](const bench::EngineSetup& s) { return bench::make_vp(s); }},
      {"angr", [](const bench::EngineSetup& s) {
         return bench::make_angr(s, baseline::LifterBugs::none());
       }},
  };

  std::printf(
      "FIG 6: TOTAL EXECUTION TIME PER BENCHMARK AND ENGINE "
      "(mean over %d run%s)\n",
      reps, reps == 1 ? "" : "s");
  std::printf(
      "columns: total seconds (engine-only seconds, solver excluded)\n\n");
  std::printf("%-16s %18s %18s %18s %18s\n", "Benchmark", "BinSec", "BinSym",
              "SymEx-VP", "angr");

  // aggregate engine-only time across all benchmarks, per engine
  std::map<std::string, double> aggregate_exec;

  for (const workloads::WorkloadInfo& info : workloads::table1_workloads()) {
    core::Program program = workloads::load_workload_or_exit(table, info.name);
    bench::EngineSetup setup{decoder, registry, program};

    std::printf("%-16s", info.name.c_str());
    for (const EngineDef& def : engines) {
      Measurement mean;
      for (int rep = 0; rep < reps; ++rep) {
        bench::EngineInstance engine = def.make(setup);
        core::EngineOptions options;
        if (quick) options.max_paths = 150;
        core::EngineStats stats = engine.explore(options);
        mean.total_seconds += stats.seconds;
        mean.solver_seconds += stats.solver.solve_seconds;
        mean.paths = stats.paths;
      }
      mean.total_seconds /= reps;
      mean.solver_seconds /= reps;
      aggregate_exec[def.label] += mean.exec_seconds();
      std::printf(" %9.3f (%6.3f)", mean.total_seconds, mean.exec_seconds());
    }
    std::printf("\n");
  }

  std::printf("\naggregate engine-only seconds: BinSec=%.3f BinSym=%.3f "
              "SymEx-VP=%.3f angr=%.3f\n",
              aggregate_exec["BinSec"], aggregate_exec["BinSym"],
              aggregate_exec["SymEx-VP"], aggregate_exec["angr"]);

  bool shape_ok = aggregate_exec["BinSec"] < aggregate_exec["BinSym"] &&
                  aggregate_exec["BinSym"] < aggregate_exec["SymEx-VP"] &&
                  aggregate_exec["SymEx-VP"] < aggregate_exec["angr"];
  std::printf("shape %s: %s\n", shape_ok ? "OK" : "MISMATCH",
              "paper ordering is binsec < binsym < symex-vp < angr");
  return shape_ok ? 0 : 1;
}
