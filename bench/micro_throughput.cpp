// Micro-benchmarks (google-benchmark): decoder, disassembler, the three
// instruction execution paths (concrete spec interpretation, concolic spec
// interpretation, IR lifting+execution), expression building and the
// solver backends on a representative branch-flip query.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "asm/assembler.hpp"
#include "baseline/ir_exec.hpp"
#include "core/executor.hpp"
#include "elf/elf32.hpp"
#include "interp/concrete.hpp"
#include "interp/taint.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "support/rng.hpp"

using namespace binsym;

namespace {

struct Fixture {
  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
  std::vector<uint32_t> words;

  Fixture() {
    spec::install_rv32im(registry, table);
    // A pool of valid instruction words covering the RV32IM ALU space.
    // CSR/System formats are deliberately excluded (their randomized
    // operand fields would mostly be invalid CSR numbers); log how many
    // opcodes that skips so the pool's coverage is visible, not silent.
    Rng rng(99);
    unsigned skipped = 0;
    for (const isa::OpcodeInfo& info : table.entries()) {
      if (info.format == isa::Format::kCsr ||
          info.format == isa::Format::kSystem) {
        ++skipped;
        continue;
      }
      for (int i = 0; i < 4; ++i)
        words.push_back(info.match | (rng.next32() & ~info.mask));
    }
    if (skipped)
      std::fprintf(stderr,
                   "note: instruction pool skips %u CSR/System opcode(s)\n",
                   skipped);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Decode(benchmark::State& state) {
  Fixture& f = fixture();
  size_t i = 0;
  for (auto _ : state) {
    auto d = f.decoder.decode(f.words[i++ % f.words.size()]);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decode);

void BM_Disassemble(benchmark::State& state) {
  Fixture& f = fixture();
  size_t i = 0;
  for (auto _ : state) {
    std::string s =
        isa::disassemble_word(f.decoder, f.words[i++ % f.words.size()], 0x1000);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Disassemble);

constexpr const char* kLoopSource = R"(
_start:
    li t0, 1000
loop:
    addi t1, t1, 3
    slli t2, t1, 4
    xor t3, t2, t1
    sltu t4, t3, t2
    add t5, t5, t4
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
)";

void concrete_interp(benchmark::State& state, bool uop_fastpath) {
  Fixture& f = fixture();
  rvasm::AsmResult assembled = rvasm::assemble_or_die(f.table, kLoopSource);
  for (auto _ : state) {
    interp::Iss iss(f.decoder, f.registry, uop_fastpath);
    for (const elf::Segment& seg : assembled.image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                     seg.bytes[i]);
    iss.machine().pc_ = assembled.image.entry;
    uint64_t steps = iss.run();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(steps));
  }
}

void BM_ConcreteSpecInterp(benchmark::State& state) {
  // Fast path off: this pins the per-instruction spec-walk baseline.
  concrete_interp(state, /*uop_fastpath=*/false);
}
BENCHMARK(BM_ConcreteSpecInterp);

void BM_ConcreteBlockInterp(benchmark::State& state) {
  // Micro-op block compilation + threaded dispatch (the default mode).
  concrete_interp(state, /*uop_fastpath=*/true);
}
BENCHMARK(BM_ConcreteBlockInterp);

void taint_interp(benchmark::State& state, bool uop_fastpath) {
  Fixture& f = fixture();
  rvasm::AsmResult assembled = rvasm::assemble_or_die(f.table, kLoopSource);
  for (auto _ : state) {
    interp::TaintTracker tracker(f.decoder, f.registry, uop_fastpath);
    for (const elf::Segment& seg : assembled.image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        tracker.machine().memory_[seg.addr + static_cast<uint32_t>(i)] =
            seg.bytes[i];
    tracker.machine().pc_ = assembled.image.entry;
    uint64_t steps = tracker.run();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(steps));
  }
}

void BM_TaintSpecInterp(benchmark::State& state) {
  taint_interp(state, /*uop_fastpath=*/false);
}
BENCHMARK(BM_TaintSpecInterp);

void BM_TaintBlockInterp(benchmark::State& state) {
  taint_interp(state, /*uop_fastpath=*/true);
}
BENCHMARK(BM_TaintBlockInterp);

void BM_ConcolicSpecInterp(benchmark::State& state) {
  Fixture& f = fixture();
  rvasm::AsmResult assembled = rvasm::assemble_or_die(f.table, kLoopSource);
  core::Program program = elf::to_program(assembled.image);
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, f.decoder, f.registry, program);
  core::PathTrace trace;
  for (auto _ : state) {
    executor.run(smt::Assignment{}, trace);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(trace.steps));
  }
}
BENCHMARK(BM_ConcolicSpecInterp);

void BM_LifterIrExec(benchmark::State& state) {
  Fixture& f = fixture();
  rvasm::AsmResult assembled = rvasm::assemble_or_die(f.table, kLoopSource);
  core::Program program = elf::to_program(assembled.image);
  smt::Context ctx;
  baseline::Lifter lifter;
  baseline::IrExecutor executor(ctx, f.decoder, lifter, program);
  core::PathTrace trace;
  for (auto _ : state) {
    executor.run(smt::Assignment{}, trace);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(trace.steps));
  }
}
BENCHMARK(BM_LifterIrExec);

// Reset-per-run is the other half of the per-flip cost snapshots attack:
// with copy-on-write pages, rebinding a machine memory to the program image
// copies the page *table* only — zero page contents — regardless of image
// size. The benchmark sweeps the image size to pin that O(pages-in-table)
// behavior (per-reset time must not scale with 4 KiB page payloads), and
// fails outright if a reset physically copies a page.
void BM_MemoryResetCoW(benchmark::State& state) {
  core::ConcreteMemory image;
  const int64_t pages = state.range(0);
  for (int64_t p = 0; p < pages; ++p)
    image.write8(static_cast<uint32_t>(p) * core::ConcreteMemory::kPageSize,
                 0xab);
  smt::Context ctx;
  core::ConcolicMemory mem(ctx);
  for (auto _ : state) {
    mem.reset(image);
    benchmark::DoNotOptimize(mem.read_concrete(0, 4));
  }
  if (mem.concrete().pages_copied() != 0)
    state.SkipWithError("reset broke copy-on-write (page physically copied)");
  state.SetItemsProcessed(state.iterations());
  state.counters["pages"] = static_cast<double>(pages);
}
BENCHMARK(BM_MemoryResetCoW)->Arg(4)->Arg(64)->Arg(1024);

// Deep shared-sub-DAG expression of the shape concolic runs produce; the
// traversal benchmarks below all walk it.
smt::ExprRef build_chain(smt::Context& ctx, int depth) {
  smt::ExprRef x = ctx.var("x", 32);
  smt::ExprRef y = ctx.var("y", 32);
  smt::ExprRef acc = ctx.add(x, y);
  for (int i = 0; i < depth; ++i) {
    acc = ctx.add(ctx.xor_(acc, x), ctx.constant(i | 1, 32));
    acc = ctx.ite(ctx.ult(acc, y), acc, ctx.lshr(acc, ctx.constant(1, 32)));
  }
  return acc;
}

// The postorder/node_count/collect_vars hot paths use a dense
// std::vector<bool> NodeMarker visited set (ids are per-context dense)
// instead of a hash set — these pin the walk throughput that improvement
// bought.
void BM_PostorderWalk(benchmark::State& state) {
  smt::Context ctx;
  smt::ExprRef root = build_chain(ctx, 256);
  for (auto _ : state) {
    size_t n = smt::node_count(root);
    benchmark::DoNotOptimize(n);
    state.SetItemsProcessed(state.items_processed() + static_cast<int64_t>(n));
  }
}
BENCHMARK(BM_PostorderWalk);

void BM_PostorderWalkReusedMarker(benchmark::State& state) {
  // Same walk with a caller-owned reused marker (the slicer's pattern):
  // no per-call allocation, O(visited) clear.
  smt::Context ctx;
  smt::ExprRef root = build_chain(ctx, 256);
  smt::NodeMarker marker;
  for (auto _ : state) {
    marker.clear();
    size_t n = 0;
    smt::postorder(root, marker, [&](smt::ExprRef) { ++n; });
    benchmark::DoNotOptimize(n);
    state.SetItemsProcessed(state.items_processed() + static_cast<int64_t>(n));
  }
}
BENCHMARK(BM_PostorderWalkReusedMarker);

void BM_CollectVars(benchmark::State& state) {
  smt::Context ctx;
  std::vector<smt::ExprRef> roots;
  for (int i = 0; i < 8; ++i) roots.push_back(build_chain(ctx, 64 + i));
  for (auto _ : state) {
    auto vars = smt::collect_vars(roots);
    benchmark::DoNotOptimize(vars);
  }
}
BENCHMARK(BM_CollectVars);

void BM_ExpressionBuilding(benchmark::State& state) {
  for (auto _ : state) {
    smt::Context ctx;
    smt::ExprRef x = ctx.var("x", 32);
    smt::ExprRef acc = ctx.constant(0, 32);
    for (int i = 0; i < 64; ++i) {
      acc = ctx.add(ctx.xor_(acc, x), ctx.constant(i, 32));
      acc = ctx.ite(ctx.ult(acc, x), acc, ctx.lshr(acc, ctx.constant(1, 32)));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ExpressionBuilding);

void solver_query(benchmark::State& state,
                  std::unique_ptr<smt::Solver> (*make)(smt::Context&)) {
  smt::Context ctx;
  auto solver = make(ctx);
  // Representative branch-flip query: byte classification chain.
  smt::ExprRef b = ctx.var("in_0", 8);
  std::vector<smt::ExprRef> query = {
      ctx.uge(b, ctx.constant(26, 8)),
      ctx.ult(b, ctx.constant(52, 8)),
      ctx.not_(ctx.eq(ctx.mul(b, ctx.constant(3, 8)), ctx.constant(77, 8)))};
  for (auto _ : state) {
    smt::Assignment model;
    auto result = solver->check(query, &model);
    benchmark::DoNotOptimize(result);
  }
}

void BM_SolverZ3(benchmark::State& state) {
  solver_query(state, &smt::make_z3_solver);
}
BENCHMARK(BM_SolverZ3);

void BM_SolverBitblast(benchmark::State& state) {
  solver_query(state, &smt::make_bitblast_solver);
}
BENCHMARK(BM_SolverBitblast);

}  // namespace

BENCHMARK_MAIN();
