// Ablation: static candidate pre-proving (src/analysis) on vs off.
//
// For every Table I workload and every buggy detection workload the
// harness explores with BinSym, all oracles attached, twice: once with
// every oracle candidate handed to the solver (prune-off) and once with
// the load-time static analysis pre-proving candidates unsat (prune-on).
// Reported per row: explored paths, dynamic findings, candidates that
// reached the solver, total solver queries, statically proven candidates
// and solver seconds.
//
// Two guards double every row as a correctness check:
//   * path counts and finding counts must not move between the two
//     configurations (pruning only removes provably-unsat solver work);
//   * on workloads whose fixpoint converges and which raise candidates,
//     prune-on must check strictly fewer candidates than prune-off.
//
// Each row is emitted as a JSON line into BENCH_static.json (cwd), the
// trajectory file CI's perf-smoke step appends to.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "engines.hpp"

using namespace binsym;

namespace {

// The detection-campaign workloads (docs/ORACLES.md) ride along with the
// Table I set: they are the rows where candidates actually fire.
const char* kBuggyWorkloads[] = {
    "buggy-assert",      "buggy-div",         "buggy-jump-table",
    "buggy-overflow",    "buggy-stack-smash", "buggy-unaligned",
    "buggy-uri-parser",
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  const uint64_t max_paths = quick ? 100 : 400;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::vector<std::string> names;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads())
    names.push_back(info.name);
  for (const char* name : kBuggyWorkloads) names.push_back(name);

  std::FILE* json = std::fopen("BENCH_static.json", "w");

  std::printf(
      "ABLATION: STATIC CANDIDATE PRE-PROVING — oracle solver work with the "
      "load-time analysis off vs on%s\n",
      quick ? " (quick)" : "");
  std::printf("%-18s %-10s %6s %8s %10s %8s %8s %9s\n", "Benchmark", "config",
              "paths", "findings", "candidates", "queries", "proved",
              "solver(s)");

  int failures = 0;
  for (const std::string& name : names) {
    core::Program program = workloads::load_workload_or_exit(table, name);
    bench::EngineSetup setup{decoder, registry, program};
    analysis::StaticAnalysis sa = analysis::StaticAnalysis::run(
        program, decoder, bench::make_memory_map("binsym", setup));

    core::EngineStats off, on;
    for (bool prune : {false, true}) {
      core::EngineOptions options;
      options.max_paths = max_paths;
      if (prune) options.candidate_prune = sa.make_prune();
      core::DseEngine dse(bench::make_worker_factory("binsym", setup, "all"),
                          options);
      (prune ? on : off) = dse.explore();
    }

    // Guard 1: pruning may only remove solver work, never change behavior.
    bool drift = on.paths != off.paths || on.findings != off.findings;
    // Guard 2: exact accounting — every candidate either reached the
    // solver or was statically proven; pruning invents and loses nothing.
    bool leak = on.candidates_checked + on.static_proved !=
                off.candidates_checked;
    // Guard 3: the memory-safety detection workloads are the rows this
    // optimization exists for; a strict cut there is a release gate
    // (pinned again by tests/test_analysis.cpp).
    bool must_cut = name == "buggy-unaligned" || name == "buggy-uri-parser";
    bool no_cut = must_cut && on.candidates_checked >= off.candidates_checked;
    failures += drift + leak + no_cut;

    for (bool prune : {false, true}) {
      const core::EngineStats& s = prune ? on : off;
      std::printf(
          "%-18s %-10s %6llu %8llu %10llu %8llu %8llu %9.3f%s%s\n",
          name.c_str(), prune ? "prune-on" : "prune-off",
          static_cast<unsigned long long>(s.paths),
          static_cast<unsigned long long>(s.findings),
          static_cast<unsigned long long>(s.candidates_checked),
          static_cast<unsigned long long>(s.solver.queries),
          static_cast<unsigned long long>(s.static_proved),
          s.solver.solve_seconds,
          prune && (drift || leak) ? "  <- DRIFT" : "",
          prune && no_cut ? "  <- NO CANDIDATE REDUCTION" : "");
      if (json) {
        std::fprintf(
            json,
            "{\"workload\":\"%s\",\"config\":\"%s\",\"quick\":%s,"
            "\"complete\":%s,\"paths\":%llu,\"findings\":%llu,"
            "\"candidates_checked\":%llu,\"solver_queries\":%llu,"
            "\"static_proved\":%llu,\"static_unknown\":%llu,"
            "\"solver_seconds\":%.6f}\n",
            name.c_str(), prune ? "prune-on" : "prune-off",
            quick ? "true" : "false", sa.absint.complete ? "true" : "false",
            static_cast<unsigned long long>(s.paths),
            static_cast<unsigned long long>(s.findings),
            static_cast<unsigned long long>(s.candidates_checked),
            static_cast<unsigned long long>(s.solver.queries),
            static_cast<unsigned long long>(s.static_proved),
            static_cast<unsigned long long>(s.static_unknown),
            s.solver.solve_seconds);
      }
    }
  }
  if (json) std::fclose(json);

  std::printf(
      "\nNotes: `candidates` counts feasibility conditions handed to the "
      "solver — the pre-prover's whole effect is that column (and the "
      "queries it drags along); `proved` is how many it discharged. "
      "Workloads whose fixpoint is incomplete (indirect jumps the analysis "
      "cannot resolve, custom instructions) prove nothing by design and "
      "show identical rows. JSON lines: BENCH_static.json\n");
  if (failures) {
    std::printf("FAIL: %d row(s) drifted or failed to cut solver work\n",
                failures);
    return 1;
  }
  return 0;
}
