// Ablation: SMT query complexity per translation strategy.
//
// The paper's future-work question (Sect. V-B): does translating through
// formal ISA semantics change SMT query complexity compared to an IR-based
// translation? This harness explores each workload with BinSym (DSL
// semantics) and the BINSEC-like engine (lifter IR), and measures the
// branch-flip queries themselves: DAG node count per query and cumulative
// solver time. Because both engines share the hash-consed expression layer
// and builder folding, differences isolate the translation shape.
#include <cstdio>
#include <cstring>

#include "engines.hpp"

using namespace binsym;

namespace {

struct QueryStats {
  uint64_t queries = 0;
  uint64_t total_nodes = 0;
  uint64_t max_nodes = 0;
  uint64_t branches = 0;
  double solver_seconds = 0;
};

QueryStats measure(bench::EngineInstance engine, uint64_t max_paths) {
  QueryStats out;
  core::EngineOptions options;
  options.max_paths = max_paths;
  core::DseEngine dse(*engine.executor, smt::make_z3_solver(*engine.ctx),
                      options);
  core::EngineStats stats = dse.explore([&](const core::PathResult& path) {
    for (const core::BranchRecord& branch : path.trace.branches) {
      ++out.queries;
      uint64_t nodes = smt::node_count(branch.cond);
      out.total_nodes += nodes;
      out.max_nodes = std::max(out.max_nodes, nodes);
    }
    out.branches += path.trace.branches.size();
  });
  out.solver_seconds = stats.solver.solve_seconds;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  uint64_t max_paths = quick ? 100 : 400;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::printf(
      "ABLATION: SMT QUERY COMPLEXITY — formal-semantics translation "
      "(BinSym) vs lifter IR (BinSec-like)\n");
  std::printf("%-16s %-10s %12s %12s %12s %12s\n", "Benchmark", "engine",
              "conditions", "avg nodes", "max nodes", "solver(s)");

  for (const workloads::WorkloadInfo& info : workloads::table1_workloads()) {
    core::Program program = workloads::load_workload_or_exit(table, info.name);
    bench::EngineSetup setup{decoder, registry, program};

    QueryStats binsym_stats = measure(bench::make_binsym(setup), max_paths);
    QueryStats binsec_stats = measure(bench::make_binsec(setup), max_paths);

    auto row = [&](const char* engine, const QueryStats& s) {
      std::printf("%-16s %-10s %12llu %12.1f %12llu %12.3f\n",
                  info.name.c_str(), engine,
                  static_cast<unsigned long long>(s.queries),
                  s.queries ? static_cast<double>(s.total_nodes) / s.queries
                            : 0.0,
                  static_cast<unsigned long long>(s.max_nodes),
                  s.solver_seconds);
    };
    row("binsym", binsym_stats);
    row("binsec", binsec_stats);
  }

  std::printf(
      "\nNote: identical expression layer + folding on both sides; equal "
      "node counts mean the formal-semantics translation does not inflate "
      "query complexity (the paper's open question).\n");
  return 0;
}
