// Ablation: SMT query complexity and solver cost per optimization stage.
//
// Two questions share this harness. The paper's future-work question
// (Sect. V-B): does translating through formal ISA semantics change SMT
// query complexity compared to an IR-based translation? And this repo's
// own: how much of the per-flip solver cost do the three solver-pipeline
// optimizations (incremental prefix solving, constraint-independence
// slicing, model-reuse pre-check) remove, each on its own layer?
//
// For every Table I workload the harness explores with BinSym (DSL
// semantics) and the BINSEC-like engine (lifter IR) under a cumulative
// sweep {baseline, +incremental, +slice, +presolve} — plus a "no-intern"
// row re-running the full pipeline with expression hash-consing disabled
// (smt/context.hpp) — and measures the *effective* branch-flip queries:
// distinct DAG nodes per query (sliced queries shrink), cumulative solver
// seconds, presolve hits and cache hits. Path counts are printed so every
// row doubles as a determinism check — they must not move across
// configurations, the intern toggle included.
//
// Two backend-layer rows extend the sweep (see docs/SOLVERS.md): a
// "portfolio" row re-running the full pipeline with the racing solver
// portfolio (path counts must not move — the race may only change who
// answers, never what is explored), and a "persistent" row running the
// full pipeline twice over one content-addressed solver store — the
// reported stats are the warm second run, and on the query-heavy
// base64-encode/uri-parser workloads the warm run must issue at least 5x
// fewer backend checks than its cold twin while exploring the identical
// path count.
//
// Besides the table, each row is emitted as a JSON line into
// BENCH_smt_queries.json (cwd), the trajectory file CI's perf-smoke step
// appends to.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "engines.hpp"
#include "smt/store.hpp"

using namespace binsym;

namespace {

struct Config {
  const char* name;
  bool incremental, slice, presolve, intern;
  bool portfolio = false;   // race z3 + bitblast per query
  bool persistent = false;  // cold + warm pair over one solver store
};

// Cumulative: each stage adds one optimization to the previous stage. The
// "no-intern" row re-runs the full pipeline with expression hash-consing
// off (the legacy fresh-node-per-call allocator), isolating how much of
// the query DAG size the intern arena's structural sharing removes; the
// "portfolio" and "persistent" rows swap the backend layer under the full
// pipeline (docs/SOLVERS.md).
constexpr Config kConfigs[] = {
    {"baseline", false, false, false, true},
    {"+incremental", true, false, false, true},
    {"+slice", true, true, false, true},
    {"+presolve", true, true, true, true},
    {"no-intern", true, true, true, false},
    {"portfolio", true, true, true, true, /*portfolio=*/true},
    {"persistent", true, true, true, true, false, /*persistent=*/true},
};

/// Checks the backend actually ran: queries it neither answered from the
/// in-memory cache nor from the persistent store.
uint64_t backend_calls(const core::EngineStats& s) {
  return s.solver.queries - s.solver.cache_hits - s.store_hits;
}

/// One measured exploration. A "persistent" config runs twice over one
/// private store directory — cold (populates the store; stats to
/// *cold_out) then warm (returned) — so the row shows what a restart pays.
core::EngineStats measure(const std::string& engine,
                          const bench::EngineSetup& setup,
                          const Config& config, uint64_t max_paths,
                          const std::string& store_tag,
                          core::EngineStats* cold_out) {
  core::EngineOptions options;
  options.max_paths = max_paths;
  options.incremental_solving = config.incremental;
  options.slice_queries = config.slice;
  options.presolve_models = config.presolve;
  options.intern_exprs = config.intern;
  options.measure_query_nodes = true;

  bench::EngineSetup local = setup;
  local.robust.portfolio = config.portfolio;
  if (!config.persistent)
    return bench::explore_parallel(engine, local, options);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("binsym-bench-store-" + store_tag))
          .string();
  std::filesystem::remove_all(dir);
  options.solver_store = smt::SolverStore::open(dir);
  *cold_out = bench::explore_parallel(engine, local, options);
  options.solver_store = smt::SolverStore::open(dir);
  core::EngineStats warm = bench::explore_parallel(engine, local, options);
  std::filesystem::remove_all(dir);
  return warm;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  const uint64_t max_paths = quick ? 100 : 400;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::FILE* json = std::fopen("BENCH_smt_queries.json", "w");

  std::printf(
      "ABLATION: SMT QUERY COMPLEXITY — translation strategy x solver "
      "pipeline {baseline, +incremental, +slice, +presolve, no-intern}%s\n",
      quick ? " (quick)" : "");
  std::printf("%-16s %-8s %-13s %8s %8s %10s %9s %10s %9s %10s\n", "Benchmark",
              "engine", "config", "paths", "queries", "avg nodes", "max nodes",
              "solver(s)", "presolve", "cache-hit");

  int failures = 0;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads()) {
    core::Program program = workloads::load_workload_or_exit(table, info.name);
    bench::EngineSetup setup{decoder, registry, program};

    for (const char* engine : {"binsym", "binsec"}) {
      uint64_t baseline_paths = 0;
      uint64_t interned_nodes_total = 0;  // "+presolve" row (intern on)
      for (const Config& config : kConfigs) {
        core::EngineStats cold{};
        core::EngineStats s =
            measure(engine, setup, config, max_paths,
                    info.name + "-" + engine, &cold);
        if (config.incremental == false && config.slice == false &&
            config.presolve == false)
          baseline_paths = s.paths;
        // Determinism guard: the optimizations may only change cost, never
        // the explored path set's size. The intern toggle is held to the
        // same bar — hash-consing must be purely representational.
        if (s.paths != baseline_paths) ++failures;
        if (std::strcmp(config.name, "+presolve") == 0)
          interned_nodes_total = s.query_nodes_total;
        // Sharing guard: the legacy allocator duplicates structurally equal
        // nodes (re-read bytes, re-minted constants), so on the byte-heavy
        // workloads the interned pipeline must ship strictly smaller query
        // DAGs than the otherwise identical no-intern row.
        if (std::strcmp(config.name, "no-intern") == 0 &&
            (info.name == "base64-encode" || info.name == "uri-parser") &&
            interned_nodes_total >= s.query_nodes_total) {
          std::printf("FAIL: %s/%s intern on did not reduce query nodes "
                      "(%llu >= %llu)\n",
                      info.name.c_str(), engine,
                      static_cast<unsigned long long>(interned_nodes_total),
                      static_cast<unsigned long long>(s.query_nodes_total));
          ++failures;
        }
        // Warm-vs-cold guard: the persistent row's reported stats are the
        // warm second run; its cold twin must have explored the same path
        // count, and on the query-heavy workloads the store must absorb at
        // least 80% of the backend traffic a restart would otherwise repay.
        if (config.persistent) {
          if (cold.paths != baseline_paths) ++failures;
          if ((info.name == "base64-encode" || info.name == "uri-parser") &&
              5 * backend_calls(s) > backend_calls(cold)) {
            std::printf(
                "FAIL: %s/%s warm store run did not cut backend calls 5x "
                "(cold %llu, warm %llu)\n",
                info.name.c_str(), engine,
                static_cast<unsigned long long>(backend_calls(cold)),
                static_cast<unsigned long long>(backend_calls(s)));
            ++failures;
          }
        }

        double avg_nodes =
            s.flip_attempts
                ? static_cast<double>(s.query_nodes_total) / s.flip_attempts
                : 0.0;
        std::printf(
            "%-16s %-8s %-13s %8llu %8llu %10.1f %9llu %10.3f %9llu %10llu%s\n",
            info.name.c_str(), engine, config.name,
            static_cast<unsigned long long>(s.paths),
            static_cast<unsigned long long>(s.flip_attempts), avg_nodes,
            static_cast<unsigned long long>(s.query_nodes_max),
            s.solver.solve_seconds,
            static_cast<unsigned long long>(s.presolve_hits),
            static_cast<unsigned long long>(s.solver.cache_hits),
            s.paths != baseline_paths ? "  <- PATH-COUNT DRIFT" : "");
        if (json) {
          std::fprintf(
              json,
              "{\"workload\":\"%s\",\"engine\":\"%s\",\"config\":\"%s\","
              "\"quick\":%s,\"intern\":%s,\"paths\":%llu,\"queries\":%llu,"
              "\"query_nodes_total\":%llu,"
              "\"avg_query_nodes\":%.2f,\"max_query_nodes\":%llu,"
              "\"solver_seconds\":%.6f,\"presolve_hits\":%llu,"
              "\"cache_hits\":%llu,\"sliced_out\":%llu,"
              "\"store_hits\":%llu,\"backend_calls\":%llu}\n",
              info.name.c_str(), engine, config.name, quick ? "true" : "false",
              config.intern ? "true" : "false",
              static_cast<unsigned long long>(s.paths),
              static_cast<unsigned long long>(s.flip_attempts),
              static_cast<unsigned long long>(s.query_nodes_total), avg_nodes,
              static_cast<unsigned long long>(s.query_nodes_max),
              s.solver.solve_seconds,
              static_cast<unsigned long long>(s.presolve_hits),
              static_cast<unsigned long long>(s.solver.cache_hits),
              static_cast<unsigned long long>(s.sliced_constraints),
              static_cast<unsigned long long>(s.store_hits),
              static_cast<unsigned long long>(backend_calls(s)));
        }
      }
    }
  }
  if (json) std::fclose(json);

  std::printf(
      "\nNotes: identical expression layer + folding on both engines, so "
      "equal node counts answer the paper's open question; the config sweep "
      "is cumulative, and `avg nodes` drops at +slice because sliced-out "
      "constraints leave the query. The no-intern row re-runs +presolve with "
      "hash-consing off; paths must not move and query nodes must not "
      "shrink. The portfolio row races z3 + bitblast per query; the "
      "persistent row is the warm second run over a solver store its cold "
      "twin populated (docs/SOLVERS.md) — on base64-encode/uri-parser the "
      "warm run must issue >=5x fewer backend calls. JSON lines: "
      "BENCH_smt_queries.json\n");
  if (failures) {
    std::printf("FAIL: %d configuration(s) drifted from the baseline path "
                "count\n", failures);
    return 1;
  }
  return 0;
}
