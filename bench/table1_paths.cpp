// Regenerates Table I: "Amount of execution paths found by different SE
// engines" (paper Sect. V-A).
//
// Rows: the five evaluation programs. Columns: angr (with the five real
// lifter bugs injected), BINSEC-like, SymEx-VP-like and BinSym. The paper's
// reference numbers print alongside the measured ones. The expected shape:
// the three correct engines agree on every row; the buggy angr column
// misses paths on base64-encode (large miss, load-extension bug) and
// uri-parser (small miss, signed-comparison bug).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engines.hpp"

using namespace binsym;

int main(int argc, char** argv) {
  bool quick = false;
  core::EngineOptions base_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      base_options.jobs = bench::parse_jobs_arg(argv[++i]);
    } else if (std::strcmp(argv[i], "--search") == 0 && i + 1 < argc) {
      if (!bench::parse_search_arg(argv[++i], &base_options.search)) return 2;
    } else if (bench::parse_solver_opt_flag(argv[i], &base_options)) {
      // Path counts must be bit-identical no matter which solver
      // optimizations run; the flags exist so sweeps can prove it.
    }
  }

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::printf(
      "TABLE I: AMOUNT OF EXECUTION PATHS FOUND BY DIFFERENT SE ENGINES\n");
  std::printf("%-16s %12s %12s %12s %12s   %s\n", "Benchmark", "angr",
              "BinSec", "SymEx-VP", "BinSym", "paper(angr/others)");

  bool shape_ok = true;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads()) {
    core::Program program = workloads::load_workload_or_exit(table, info.name);
    bench::EngineSetup setup{decoder, registry, program};

    core::EngineOptions options = base_options;
    if (quick) options.max_paths = 200;

    uint64_t angr_paths =
        bench::explore_parallel("angr-buggy", setup, options).paths;
    uint64_t binsec_paths = bench::explore_parallel("binsec", setup, options).paths;
    uint64_t vp_paths = bench::explore_parallel("vp", setup, options).paths;
    uint64_t binsym_paths = bench::explore_parallel("binsym", setup, options).paths;

    const char* mark =
        angr_paths != binsym_paths ? " \xe2\x80\xa0" : "";  // dagger
    std::printf("%-16s %10llu%s %12llu %12llu %12llu   (%llu/%llu)\n",
                info.name.c_str(),
                static_cast<unsigned long long>(angr_paths), mark,
                static_cast<unsigned long long>(binsec_paths),
                static_cast<unsigned long long>(vp_paths),
                static_cast<unsigned long long>(binsym_paths),
                static_cast<unsigned long long>(info.paper_paths_angr),
                static_cast<unsigned long long>(info.paper_paths));

    bool correct_engines_agree =
        binsec_paths == binsym_paths && vp_paths == binsym_paths;
    bool angr_should_miss = info.paper_paths_angr != info.paper_paths;
    bool angr_misses = angr_paths < binsym_paths;
    if (!correct_engines_agree) shape_ok = false;
    if (!quick && angr_should_miss != angr_misses) shape_ok = false;
  }

  std::printf("shape %s: correct engines agree%s\n",
              shape_ok ? "OK" : "MISMATCH",
              quick ? " (quick mode: path counts truncated)" :
                      "; buggy angr misses paths exactly where the paper reports");
  return shape_ok ? 0 : 1;
}
