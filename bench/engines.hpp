// Shared benchmark plumbing: construct each of the four engines of the
// paper's evaluation for a given workload.
//
//   angr-like   = BoxedIrExecutor (re-lift + boxed values); Table I uses
//                 LifterBugs::all(), Fig. 6 the fixed lifter
//   binsec-like = IrExecutor (cached lifting, correct)
//   symex-vp    = VpExecutor (spec interpretation behind a modelled bus)
//   binsym      = BinSymExecutor (spec interpretation, direct)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/ir_exec.hpp"
#include "core/engine.hpp"
#include "isa/decoder.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "vp/vp_executor.hpp"
#include "workloads/workloads.hpp"

namespace binsym::bench {

/// Everything one engine instance needs, with owned lifetimes.
struct EngineInstance {
  std::string label;
  std::unique_ptr<smt::Context> ctx;
  std::unique_ptr<baseline::Lifter> lifter;  // baseline engines only
  std::unique_ptr<core::Executor> executor;

  core::EngineStats explore(core::EngineOptions options = {}) {
    core::DseEngine engine(*executor, smt::make_z3_solver(*ctx), options);
    return engine.explore();
  }
};

struct EngineSetup {
  const isa::Decoder& decoder;
  const spec::Registry& registry;
  const core::Program& program;
};

inline EngineInstance make_binsym(const EngineSetup& s) {
  EngineInstance e;
  e.label = "BinSym";
  e.ctx = std::make_unique<smt::Context>();
  e.executor = std::make_unique<core::BinSymExecutor>(*e.ctx, s.decoder,
                                                      s.registry, s.program);
  return e;
}

inline EngineInstance make_vp(const EngineSetup& s) {
  EngineInstance e;
  e.label = "SymEx-VP";
  e.ctx = std::make_unique<smt::Context>();
  e.executor = std::make_unique<vp::VpExecutor>(*e.ctx, s.decoder, s.registry,
                                                s.program);
  return e;
}

inline EngineInstance make_binsec(const EngineSetup& s) {
  EngineInstance e;
  e.label = "BinSec";
  e.ctx = std::make_unique<smt::Context>();
  e.lifter = std::make_unique<baseline::Lifter>(baseline::LifterBugs::none());
  e.executor = std::make_unique<baseline::IrExecutor>(*e.ctx, s.decoder,
                                                      *e.lifter, s.program);
  return e;
}

inline EngineInstance make_angr(const EngineSetup& s, baseline::LifterBugs bugs) {
  EngineInstance e;
  e.label = bugs.any() ? "angr(buggy)" : "angr(fixed)";
  e.ctx = std::make_unique<smt::Context>();
  e.lifter = std::make_unique<baseline::Lifter>(bugs);
  e.executor = std::make_unique<baseline::BoxedIrExecutor>(*e.ctx, s.decoder,
                                                           *e.lifter, s.program);
  return e;
}

}  // namespace binsym::bench
