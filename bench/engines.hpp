// Shared benchmark plumbing: construct each of the four engines of the
// paper's evaluation for a given workload.
//
//   angr-like   = BoxedIrExecutor (re-lift + boxed values); Table I uses
//                 LifterBugs::all(), Fig. 6 the fixed lifter
//   binsec-like = IrExecutor (cached lifting, correct)
//   symex-vp    = VpExecutor (spec interpretation behind a modelled bus)
//   binsym      = BinSymExecutor (spec interpretation, direct)
//
// Every construction path funnels through build_worker(), so the owned
// single-instance form (EngineInstance) and the per-worker parallel form
// (WorkerFactory) can never drift apart.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/ir_exec.hpp"
#include "core/engine.hpp"
#include "isa/decoder.hpp"
#include "oracles/manager.hpp"
#include "smt/pipe.hpp"
#include "smt/portfolio.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "vp/vp_executor.hpp"
#include "workloads/workloads.hpp"

namespace binsym::bench {

/// Solver-robustness knobs (docs/ROBUSTNESS.md) applied to every worker's
/// backend stack. With a per-query deadline set, each worker's solver is
/// wrapped in a FailoverSolver: a kUnknown (timeout) or thrown backend
/// failure on the primary retries once, statelessly, on the other backend.
struct RobustnessOptions {
  std::string solver = "z3";      // primary backend: "z3" | "bitblast" |
                                  // "pipe:CMD" (docs/SOLVERS.md)
  uint32_t query_timeout_ms = 0;  // per-query deadline; 0 = none
  bool failover = true;           // retry unknowns on the other backend
  // -- Solver portfolio (smt/portfolio.hpp). When on, each worker's backend
  // is a portfolio racing `portfolio_backends` per query; `solver` and
  // `failover` are ignored (a portfolio is already as strong as its
  // strongest member, so layering a failover on top would be redundant).
  bool portfolio = false;                          // CLI: --portfolio
  std::string portfolio_backends = "z3,bitblast";  // comma list of backend
                                                   // names as in `solver`
};

/// Split a --portfolio-backends comma list into backend names.
inline std::vector<std::string> split_backend_list(const std::string& list) {
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    if (comma > pos) names.push_back(list.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return names;
}

struct EngineSetup {
  const isa::Decoder& decoder;
  const spec::Registry& registry;
  const core::Program& program;
  /// Per-machine knobs (micro-op fast path, step budget, stack top) applied
  /// to every worker built from this setup. Defaulted so three-member
  /// aggregate initialization keeps working.
  core::MachineConfig config{};
  /// Solver deadline/failover knobs, also defaulted (no deadline, plain z3
  /// backend) so existing aggregate initializations keep working.
  RobustnessOptions robust{};
  /// Hash-cons expression nodes in every worker Context built from this
  /// setup (smt/context.hpp). Off = legacy fresh-node-per-call allocator,
  /// for the differential harness and the --no-intern ablation.
  bool intern_exprs = true;
};

/// A backend by CLI name — "z3", "bitblast", or "pipe:CMD" (an external
/// SMT-LIB solver command, e.g. "pipe:z3 -in"; see smt/pipe.hpp); null on
/// other names.
inline std::unique_ptr<smt::Solver> make_named_solver(const std::string& name,
                                                      smt::Context& ctx) {
  if (name == "z3") return smt::make_z3_solver(ctx);
  if (name == "bitblast") return smt::make_bitblast_solver(ctx);
  if (name.rfind("pipe:", 0) == 0)
    return smt::make_pipe_solver(ctx, name.substr(5));
  return nullptr;
}

/// True when `name` is a backend make_named_solver can build.
inline bool known_backend(const std::string& name) {
  return name == "z3" || name == "bitblast" || name.rfind("pipe:", 0) == 0;
}

/// Build the worker solver stack described by `robust` on `ctx`: the named
/// primary, with the per-query deadline applied, wrapped in a FailoverSolver
/// (lazily constructing the *other* backend) when a deadline is set and
/// failover is on. Without a deadline the stack is just the primary, so the
/// default configuration is byte-identical to the pre-robustness one.
inline std::unique_ptr<smt::Solver> make_robust_solver(
    const RobustnessOptions& robust, smt::Context& ctx) {
  if (robust.portfolio) {
    std::vector<std::unique_ptr<smt::Solver>> members;
    for (const std::string& name : split_backend_list(robust.portfolio_backends)) {
      std::unique_ptr<smt::Solver> member = make_named_solver(name, ctx);
      if (!member) return nullptr;
      members.push_back(std::move(member));
    }
    if (members.empty()) return nullptr;
    std::unique_ptr<smt::Solver> solver =
        smt::make_portfolio_solver(std::move(members));
    if (robust.query_timeout_ms > 0)
      solver->set_deadline_ms(robust.query_timeout_ms);
    return solver;
  }
  std::unique_ptr<smt::Solver> solver = make_named_solver(robust.solver, ctx);
  if (!solver) return nullptr;
  if (robust.query_timeout_ms == 0) return solver;
  if (robust.failover) {
    const std::string secondary = robust.solver == "z3" ? "bitblast" : "z3";
    solver = std::make_unique<smt::FailoverSolver>(
        std::move(solver),
        [secondary, &ctx] { return make_named_solver(secondary, ctx); });
  }
  solver->set_deadline_ms(robust.query_timeout_ms);
  return solver;
}

/// CLI spellings accepted by every harness: binsym, vp, binsec, angr,
/// angr-buggy.
inline bool known_engine(const std::string& engine) {
  return engine == "binsym" || engine == "vp" || engine == "binsec" ||
         engine == "angr" || engine == "angr-buggy";
}

/// The one per-engine construction path. Returns resources with a null
/// executor for unknown names. `bugs` applies to the lifter-based engines
/// ("angr-buggy" forces LifterBugs::all()); `with_solver` skips backend
/// construction for callers that bring their own.
inline core::WorkerResources build_worker(
    const std::string& engine, const EngineSetup& s,
    baseline::LifterBugs bugs = baseline::LifterBugs::none(),
    bool with_solver = true) {
  core::WorkerResources r;
  if (!known_engine(engine)) return r;
  r.ctx = std::make_unique<smt::Context>(s.intern_exprs);
  if (engine == "binsym") {
    r.executor = std::make_unique<core::BinSymExecutor>(
        *r.ctx, s.decoder, s.registry, s.program, s.config);
  } else if (engine == "vp") {
    r.executor = std::make_unique<vp::VpExecutor>(*r.ctx, s.decoder,
                                                  s.registry, s.program,
                                                  s.config);
  } else if (engine == "binsec" || engine == "angr" ||
             engine == "angr-buggy") {
    if (engine == "angr-buggy") bugs = baseline::LifterBugs::all();
    auto lifter = std::make_shared<baseline::Lifter>(bugs);
    if (engine == "binsec") {
      r.executor = std::make_unique<baseline::IrExecutor>(*r.ctx, s.decoder,
                                                          *lifter, s.program);
    } else {
      r.executor = std::make_unique<baseline::BoxedIrExecutor>(
          *r.ctx, s.decoder, *lifter, s.program);
    }
    r.keepalive = std::move(lifter);
  }
  if (with_solver) r.solver = make_robust_solver(s.robust, *r.ctx);
  return r;
}

/// Everything one engine instance needs, with owned lifetimes.
struct EngineInstance {
  std::string label;
  std::shared_ptr<void> keepalive;  // extra executor state (e.g. the lifter)
  std::unique_ptr<smt::Context> ctx;
  std::unique_ptr<core::Executor> executor;

  core::EngineStats explore(core::EngineOptions options = {}) {
    core::DseEngine engine(*executor, smt::make_z3_solver(*ctx), options);
    return engine.explore();
  }
};

inline EngineInstance make_engine(std::string label, const std::string& engine,
                                  const EngineSetup& s,
                                  baseline::LifterBugs bugs = {}) {
  core::WorkerResources r =
      build_worker(engine, s, bugs, /*with_solver=*/false);
  EngineInstance e;
  e.label = std::move(label);
  e.keepalive = std::move(r.keepalive);
  e.ctx = std::move(r.ctx);
  e.executor = std::move(r.executor);
  return e;
}

inline EngineInstance make_binsym(const EngineSetup& s) {
  return make_engine("BinSym", "binsym", s);
}

inline EngineInstance make_vp(const EngineSetup& s) {
  return make_engine("SymEx-VP", "vp", s);
}

inline EngineInstance make_binsec(const EngineSetup& s) {
  return make_engine("BinSec", "binsec", s);
}

inline EngineInstance make_angr(const EngineSetup& s, baseline::LifterBugs bugs) {
  return make_engine(bugs.any() ? "angr(buggy)" : "angr(fixed)", "angr", s,
                     bugs);
}

// -- Worker factories (parallel exploration). -------------------------------

/// The bounds map the oracle layer checks data accesses against: the
/// program's loaded segments, the default stack region, and — for the VP
/// engine — its MMIO windows.
inline oracles::MemoryMap make_memory_map(const std::string& engine,
                                          const EngineSetup& s) {
  oracles::MemoryMap map =
      oracles::MemoryMap::for_program(s.program, core::MachineConfig{}.stack_top);
  if (engine == "vp")
    for (const core::MemRegion& region : vp::VpExecutor::mmio_regions())
      map.add_region(region);
  return map;
}

/// Attach the oracles named by `spec` ("all" or a comma list; "" = none)
/// to a freshly built worker. The manager joins the worker's keepalive so
/// it outlives every run of the executor observing it. Returns false for
/// an invalid spec or an executor without observer support.
inline bool attach_oracles(const std::string& engine, const EngineSetup& s,
                           const std::string& spec, core::WorkerResources* r,
                           std::string* error = nullptr) {
  if (spec.empty()) return true;
  if (!r->executor || !r->executor->supports_observer()) {
    if (error)
      *error = "engine '" + engine + "' does not support execution observers";
    return false;
  }
  auto manager = oracles::OracleManager::make(*r->ctx,
                                              make_memory_map(engine, s),
                                              spec, error);
  if (!manager) return false;
  r->executor->set_observer(manager.get());
  struct Keep {
    std::shared_ptr<void> prev;
    std::unique_ptr<oracles::OracleManager> manager;
  };
  auto keep = std::make_shared<Keep>();
  keep->prev = std::move(r->keepalive);
  keep->manager = std::move(manager);
  r->keepalive = std::move(keep);
  return true;
}

/// A WorkerFactory builds one context + executor + solver per worker; the
/// EngineSetup's decoder/registry/program are shared read-only across the
/// pool. `oracles_spec` optionally enables bug-finding oracles on every
/// worker ("all" or a comma list of oracle names; validate it up front
/// with OracleManager::parse_spec — the factory aborts on a bad spec,
/// since it has no error channel). Returns a null factory for unknown
/// engine names.
inline core::WorkerFactory make_worker_factory(
    const std::string& engine, const EngineSetup& s,
    const std::string& oracles_spec = "") {
  if (!known_engine(engine)) return nullptr;
  return [engine, s, oracles_spec](unsigned) {
    core::WorkerResources r = build_worker(engine, s);
    std::string error;
    if (!attach_oracles(engine, s, oracles_spec, &r, &error)) {
      std::fprintf(stderr, "oracle setup failed: %s\n", error.c_str());
      std::abort();
    }
    return r;
  };
}

/// One-call parallel exploration for benches: build the factory, run the
/// engine with `options`, return merged stats.
inline core::EngineStats explore_parallel(
    const std::string& engine, const EngineSetup& s,
    core::EngineOptions options,
    const core::DseEngine::PathCallback& on_path = nullptr) {
  // The intern toggle lives on EngineOptions for CLI/engine consumers, but
  // contexts are built by the factory — mirror it into the setup so the two
  // can never disagree for a run.
  EngineSetup setup = s;
  setup.intern_exprs = options.intern_exprs;
  core::DseEngine dse(make_worker_factory(engine, setup), options);
  return dse.explore(on_path);
}

// -- Shared CLI flag parsing (--jobs / --search). ---------------------------

/// Parse a --search value; prints a diagnostic and returns false on an
/// unknown strategy name.
inline bool parse_search_arg(const char* arg, core::SearchKind* out) {
  auto kind = core::parse_search_kind(arg);
  if (!kind) {
    std::fprintf(stderr, "unknown search strategy '%s'\n", arg);
    return false;
  }
  *out = *kind;
  return true;
}

/// Parse a --jobs value; zero (or garbage) clamps to one worker.
inline unsigned parse_jobs_arg(const char* arg) {
  return std::max(1u, static_cast<unsigned>(std::strtoul(arg, nullptr, 0)));
}

/// Solver-pipeline optimization toggles, shared by every harness:
/// --no-incremental, --no-slice, --no-presolve (and --no-cache and
/// --no-intern for completeness). Returns false when `arg` is none of them.
inline bool parse_solver_opt_flag(const char* arg,
                                  core::EngineOptions* options) {
  if (std::strcmp(arg, "--no-incremental") == 0) {
    options->incremental_solving = false;
  } else if (std::strcmp(arg, "--no-slice") == 0) {
    options->slice_queries = false;
  } else if (std::strcmp(arg, "--no-presolve") == 0) {
    options->presolve_models = false;
  } else if (std::strcmp(arg, "--no-cache") == 0) {
    options->cache_queries = false;
  } else if (std::strcmp(arg, "--no-intern") == 0) {
    options->intern_exprs = false;
  } else {
    return false;
  }
  return true;
}

/// Micro-op fast-path knobs, shared by every harness: --no-uop disables the
/// block-compiled fast path (pure per-instruction spec interpretation),
/// --uop-cache-size N bounds the per-worker block cache. Consumes the value
/// argument (advancing *i) for the latter. Returns false when argv[*i] is
/// neither.
inline bool parse_uop_flag(int argc, char** argv, int* i,
                           core::MachineConfig* config) {
  const char* arg = argv[*i];
  if (std::strcmp(arg, "--no-uop") == 0) {
    config->uop_fastpath = false;
  } else if (std::strcmp(arg, "--uop-cache-size") == 0 && *i + 1 < argc) {
    config->uop_cache_blocks = std::max(
        1u, static_cast<unsigned>(std::strtoul(argv[++*i], nullptr, 0)));
  } else {
    return false;
  }
  return true;
}

/// Snapshot/fork execution knobs, shared by every harness: --no-snapshot,
/// --snapshot-budget N, --snapshot-interval N. Consumes the value argument
/// (advancing *i) for the latter two. Returns false when argv[*i] is none
/// of them.
inline bool parse_snapshot_flag(int argc, char** argv, int* i,
                                core::EngineOptions* options) {
  const char* arg = argv[*i];
  if (std::strcmp(arg, "--no-snapshot") == 0) {
    options->snapshots = false;
  } else if (std::strcmp(arg, "--snapshot-budget") == 0 && *i + 1 < argc) {
    options->snapshot_budget =
        static_cast<unsigned>(std::strtoul(argv[++*i], nullptr, 0));
  } else if (std::strcmp(arg, "--snapshot-interval") == 0 && *i + 1 < argc) {
    options->snapshot_interval = std::max(
        1u, static_cast<unsigned>(std::strtoul(argv[++*i], nullptr, 0)));
  } else {
    return false;
  }
  return true;
}

/// Robustness knobs, shared by every harness (docs/ROBUSTNESS.md,
/// docs/SOLVERS.md):
///   --solver NAME             primary backend (z3 | bitblast | pipe:CMD)
///   --query-timeout-ms N      per-solver-query deadline (0 = none)
///   --no-failover             don't retry unknowns on the other backend
///   --portfolio               race backends per query (smt/portfolio.hpp)
///   --portfolio-backends LIST comma list of portfolio members
///   --deadline-secs N         wall-clock budget for the whole exploration
///   --memory-budget-mb N      stop when resident set exceeds N MiB
/// Consumes the value argument (advancing *i) for the valued flags. Returns
/// false when argv[*i] is none of them; prints a diagnostic and sets *ok to
/// false on a bad value (unknown solver name, missing argument).
inline bool parse_robustness_flag(int argc, char** argv, int* i,
                                  RobustnessOptions* robust,
                                  core::EngineOptions* options, bool* ok) {
  const char* arg = argv[*i];
  *ok = true;
  if (std::strcmp(arg, "--solver") == 0 && *i + 1 < argc) {
    robust->solver = argv[++*i];
    if (!known_backend(robust->solver)) {
      std::fprintf(stderr,
                   "unknown solver '%s' (want z3, bitblast or pipe:CMD)\n",
                   robust->solver.c_str());
      *ok = false;
    }
  } else if (std::strcmp(arg, "--portfolio") == 0) {
    robust->portfolio = true;
  } else if (std::strcmp(arg, "--portfolio-backends") == 0 && *i + 1 < argc) {
    robust->portfolio_backends = argv[++*i];
    robust->portfolio = true;  // naming members implies wanting the portfolio
    const std::vector<std::string> names =
        split_backend_list(robust->portfolio_backends);
    if (names.empty()) {
      std::fprintf(stderr, "--portfolio-backends: empty backend list\n");
      *ok = false;
    }
    for (const std::string& name : names) {
      if (!known_backend(name)) {
        std::fprintf(
            stderr,
            "unknown portfolio backend '%s' (want z3, bitblast or pipe:CMD)\n",
            name.c_str());
        *ok = false;
      }
    }
  } else if (std::strcmp(arg, "--query-timeout-ms") == 0 && *i + 1 < argc) {
    robust->query_timeout_ms =
        static_cast<uint32_t>(std::strtoul(argv[++*i], nullptr, 0));
  } else if (std::strcmp(arg, "--no-failover") == 0) {
    robust->failover = false;
  } else if (std::strcmp(arg, "--deadline-secs") == 0 && *i + 1 < argc) {
    options->deadline_secs = std::strtoull(argv[++*i], nullptr, 0);
  } else if (std::strcmp(arg, "--memory-budget-mb") == 0 && *i + 1 < argc) {
    options->memory_budget_mb = std::strtoull(argv[++*i], nullptr, 0);
  } else {
    return false;
  }
  return true;
}

}  // namespace binsym::bench
