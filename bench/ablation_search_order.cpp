// Ablation: path-selection strategy (DESIGN.md design-choice #2).
//
// The paper's BinSym uses depth-first search. This harness compares DFS
// against BFS on the evaluation workloads: identical final path counts
// (completeness is search-order independent on fully-explorable programs),
// but different worklist footprints and different time-to-first-failure —
// the trade SE engines actually care about.
#include <cstdio>
#include <cstring>

#include "engines.hpp"

using namespace binsym;

namespace {

struct Run {
  uint64_t paths = 0;
  uint64_t first_failure_path = 0;  // 0 == none found
  double seconds = 0;
};

Run explore(bench::EngineInstance& engine, core::SearchOrder order,
            uint64_t max_paths) {
  core::EngineOptions options;
  options.max_paths = max_paths;
  options.search_order = order;
  core::DseEngine dse(*engine.executor, smt::make_z3_solver(*engine.ctx),
                      options);
  Run run;
  core::EngineStats stats = dse.explore([&](const core::PathResult& path) {
    if (!path.trace.failures.empty() && run.first_failure_path == 0)
      run.first_failure_path = path.index + 1;
  });
  run.paths = stats.paths;
  run.seconds = stats.seconds;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  uint64_t max_paths = quick ? 150 : 2000;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::printf("ABLATION: PATH SELECTION (BinSym engine, %llu-path budget)\n",
              static_cast<unsigned long long>(max_paths));
  std::printf("%-16s %10s %10s %12s %12s\n", "Benchmark", "DFS paths",
              "BFS paths", "DFS time(s)", "BFS time(s)");

  bool counts_agree = true;
  std::vector<std::string> names;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads())
    names.push_back(info.name);
  names.push_back("parse-word");  // has a reachable failure

  for (const std::string& name : names) {
    core::Program program = workloads::load_workload_or_exit(table, name);
    bench::EngineSetup setup{decoder, registry, program};

    bench::EngineInstance dfs_engine = bench::make_binsym(setup);
    Run dfs = explore(dfs_engine, core::SearchOrder::kDepthFirst, max_paths);
    bench::EngineInstance bfs_engine = bench::make_binsym(setup);
    Run bfs = explore(bfs_engine, core::SearchOrder::kBreadthFirst, max_paths);

    std::printf("%-16s %10llu %10llu %12.3f %12.3f", name.c_str(),
                static_cast<unsigned long long>(dfs.paths),
                static_cast<unsigned long long>(bfs.paths), dfs.seconds,
                bfs.seconds);
    if (dfs.first_failure_path || bfs.first_failure_path)
      std::printf("   first-failure: dfs@%llu bfs@%llu",
                  static_cast<unsigned long long>(dfs.first_failure_path),
                  static_cast<unsigned long long>(bfs.first_failure_path));
    std::printf("\n");
    counts_agree = counts_agree && dfs.paths == bfs.paths;
  }

  std::printf("\npath counts search-order independent: %s\n",
              counts_agree ? "yes" : "NO (bug!)");
  return counts_agree ? 0 : 1;
}
