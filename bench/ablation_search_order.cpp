// Ablation: path-selection strategy (DESIGN.md design-choice #2).
//
// The paper's BinSym uses depth-first search. This harness compares every
// SearchStrategy implementation (DFS, BFS, random-path, coverage-guided) on
// the evaluation workloads: identical final path counts (completeness is
// search-order independent on fully-explorable programs), but different
// worklist footprints and different time-to-first-failure — the trade SE
// engines actually care about.
//
//   ablation_search_order [--quick] [--jobs N]
#include <cstdio>
#include <cstring>

#include "engines.hpp"

using namespace binsym;

namespace {

struct Run {
  uint64_t paths = 0;
  uint64_t first_failure_path = 0;  // 0 == none found
  uint64_t peak_frontier = 0;
  double seconds = 0;
};

Run explore(const bench::EngineSetup& setup, core::SearchKind kind,
            uint64_t max_paths, unsigned jobs) {
  core::EngineOptions options;
  options.max_paths = max_paths;
  options.search = kind;
  options.jobs = jobs;
  Run run;
  core::EngineStats stats = bench::explore_parallel(
      "binsym", setup, options, [&](const core::PathResult& path) {
        if (!path.trace.failures.empty() && run.first_failure_path == 0)
          run.first_failure_path = path.index + 1;
      });
  run.paths = stats.paths;
  run.peak_frontier = stats.peak_frontier;
  run.seconds = stats.seconds;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = bench::parse_jobs_arg(argv[++i]);
  }
  uint64_t max_paths = quick ? 150 : 2000;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::printf(
      "ABLATION: PATH SELECTION (BinSym engine, %llu-path budget, %u jobs)\n",
      static_cast<unsigned long long>(max_paths), jobs);
  std::printf("%-16s %-9s %10s %10s %10s %15s\n", "Benchmark", "strategy",
              "paths", "time(s)", "frontier", "first-failure");

  bool counts_agree = true;
  std::vector<std::string> names;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads())
    names.push_back(info.name);
  names.push_back("parse-word");  // has a reachable failure

  for (const std::string& name : names) {
    core::Program program = workloads::load_workload_or_exit(table, name);
    bench::EngineSetup setup{decoder, registry, program};

    uint64_t reference_paths = 0;
    for (core::SearchKind kind : core::all_search_kinds()) {
      Run run = explore(setup, kind, max_paths, jobs);
      std::printf("%-16s %-9s %10llu %10.3f %10llu", name.c_str(),
                  core::search_kind_name(kind),
                  static_cast<unsigned long long>(run.paths), run.seconds,
                  static_cast<unsigned long long>(run.peak_frontier));
      if (run.first_failure_path)
        std::printf(" %14llu",
                    static_cast<unsigned long long>(run.first_failure_path));
      std::printf("\n");
      if (reference_paths == 0) reference_paths = run.paths;
      counts_agree = counts_agree && run.paths == reference_paths;
    }
  }

  std::printf("\npath counts search-order independent: %s\n",
              counts_agree ? "yes" : "NO (bug!)");
  return counts_agree ? 0 : 1;
}
