// Ablation: parallel exploration throughput.
//
// Sweeps the DSE worker count over the Table I workloads and reports path
// throughput (paths/sec) per configuration, one machine-readable JSON line
// each, so successive PRs have a perf trajectory to regress against:
//
//   {"bench":"ablation_parallel","workload":"bubble-sort","engine":"binsym",
//    "search":"dfs","jobs":4,"paths":720,"seconds":1.234,
//    "paths_per_sec":583.4,"baseline_jobs":1,"speedup_vs_baseline":2.31}
//
// A trailing summary line reports the best speedup observed at each worker
// count. Every configuration must explore the same path *set* (asserted via
// branch-decision strings on full runs; when a --quick path budget truncates
// the exploration, only counts are compared — sets legitimately differ under
// truncation), so the comparison is throughput-only by construction.
//
//   ablation_parallel [--quick] [--engine E] [--search K] [--jobs a,b,c]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engines.hpp"

using namespace binsym;

namespace {

std::vector<unsigned> parse_jobs_list(const char* arg) {
  std::vector<unsigned> jobs;
  for (const char* p = arg; *p;) {
    jobs.push_back(bench::parse_jobs_arg(p));
    p = std::strchr(p, ',');
    if (!p) break;
    ++p;
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string engine = "binsym";
  core::SearchKind search = core::SearchKind::kDepthFirst;
  std::vector<unsigned> jobs_sweep = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = argv[++i];
    } else if (std::strcmp(argv[i], "--search") == 0 && i + 1 < argc) {
      if (!bench::parse_search_arg(argv[++i], &search)) return 2;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs_sweep = parse_jobs_list(argv[++i]);
    }
  }

  if (!bench::known_engine(engine)) {
    std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
    return 2;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::vector<std::string> names;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads())
    names.push_back(info.name);
  if (quick) names = {"base64-encode", "bubble-sort"};

  bool consistent = true;
  std::map<unsigned, double> best_speedup;
  for (const std::string& name : names) {
    core::Program program = workloads::load_workload_or_exit(table, name);
    bench::EngineSetup setup{decoder, registry, program};

    uint64_t reference_paths = 0;
    std::set<std::string> reference_keys;
    double baseline_pps = 0;
    for (unsigned jobs : jobs_sweep) {
      core::EngineOptions options;
      options.jobs = jobs;
      options.search = search;
      if (quick) options.max_paths = 200;
      std::set<std::string> keys;
      core::EngineStats stats = bench::explore_parallel(
          engine, setup, options, [&](const core::PathResult& path) {
            std::string key;
            key.reserve(path.trace.branches.size());
            for (const core::BranchRecord& b : path.trace.branches)
              key += b.taken ? '1' : '0';
            keys.insert(std::move(key));
          });
      // A truncated run (budget hit) has an order-dependent path set; only
      // full explorations are comparable set-wise.
      bool truncated = stats.paths >= options.max_paths;
      double pps = stats.seconds > 0 ? static_cast<double>(stats.paths) /
                                           stats.seconds
                                     : 0;
      if (jobs == jobs_sweep.front()) {
        reference_paths = stats.paths;
        reference_keys = std::move(keys);
        baseline_pps = pps;
      } else if (stats.paths != reference_paths ||
                 (!truncated && keys != reference_keys)) {
        consistent = false;
      }
      double speedup = baseline_pps > 0 ? pps / baseline_pps : 0;
      if (speedup > best_speedup[jobs]) best_speedup[jobs] = speedup;
      std::printf(
          "{\"bench\":\"ablation_parallel\",\"workload\":\"%s\","
          "\"engine\":\"%s\",\"search\":\"%s\",\"jobs\":%u,"
          "\"paths\":%llu,\"seconds\":%.3f,\"paths_per_sec\":%.1f,"
          "\"baseline_jobs\":%u,\"speedup_vs_baseline\":%.2f}\n",
          name.c_str(), engine.c_str(), core::search_kind_name(search), jobs,
          static_cast<unsigned long long>(stats.paths), stats.seconds, pps,
          jobs_sweep.front(), speedup);
      std::fflush(stdout);
    }
  }

  std::printf("# best speedup per worker count:");
  for (const auto& [jobs, speedup] : best_speedup)
    if (jobs != jobs_sweep.front())
      std::printf(" %ux=%.2f", jobs, speedup);
  std::printf("\n# path sets job-count independent: %s\n",
              consistent ? "yes" : "NO (bug!)");
  return consistent ? 0 : 1;
}
