// Regenerates the Fig. 5 experiment: the parse_word program analysed by
// BinSym and by the angr-like engine with the real I-type-shift lifter bug
// (bug #4). Prints which assertion failures each engine reports, with
// witness inputs — the false positive/false negative pair the paper
// describes.
#include <cstdio>
#include <map>

#include "engines.hpp"

using namespace binsym;

namespace {

std::map<uint32_t, uint32_t> collect_failures(bench::EngineInstance& engine) {
  std::map<uint32_t, uint32_t> failures;  // id -> witness x
  core::DseEngine dse(*engine.executor, smt::make_z3_solver(*engine.ctx));
  dse.explore([&](const core::PathResult& path) {
    for (const core::Failure& f : path.trace.failures) {
      uint32_t x = 0;
      for (unsigned i = 0; i < path.trace.input_vars.size() && i < 4; ++i)
        x |= static_cast<uint32_t>(path.seed.get(path.trace.input_vars[i]) &
                                   0xff)
             << (8 * i);
      failures.emplace(f.id, x);
    }
  });
  return failures;
}

void report(const char* engine, const std::map<uint32_t, uint32_t>& failures) {
  std::printf("%s:\n", engine);
  if (failures.empty()) std::printf("  no assertion failures reported\n");
  for (const auto& [id, x] : failures)
    std::printf("  assert on line %u FAILS with x = 0x%08x\n", id, x);
}

}  // namespace

int main() {
  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  core::Program program = workloads::load_workload_or_exit(table, "parse-word");
  bench::EngineSetup setup{decoder, registry, program};

  std::printf("FIG 5: parse_word(x) — mask = x << 31\n");
  std::printf("  line 4: if (x == 1) assert(mask == 0x80000000)\n");
  std::printf("  line 6: else        assert(mask != 0x80000000)\n\n");

  bench::EngineInstance binsym_engine = bench::make_binsym(setup);
  auto binsym_failures = collect_failures(binsym_engine);
  report("BinSym (formal semantics)", binsym_failures);

  baseline::LifterBugs bug4;
  bug4.itype_shamt_signed = true;
  bench::EngineInstance angr_engine = bench::make_angr(setup, bug4);
  auto angr_failures = collect_failures(angr_engine);
  report("angr-like with lifter bug #4 (signed shamt)", angr_failures);

  // Expected: BinSym reports exactly line 6 (the genuinely violable
  // assert); the buggy engine reports exactly line 4 (false positive) and
  // misses line 6 (false negative).
  bool ok = binsym_failures.count(6) == 1 && binsym_failures.count(4) == 0 &&
            angr_failures.count(4) == 1 && angr_failures.count(6) == 0;
  std::printf("\nshape %s: binsym finds the real bug (line 6) only; the "
              "buggy lifter reports the false positive (line 4) and misses "
              "the real one\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
