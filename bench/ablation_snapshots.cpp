// Ablation: snapshot/fork execution vs full replay-per-flip.
//
// The offline DSE engine classically re-executes every scheduled flip from
// the program entry point; the snapshot subsystem (core/snapshot.hpp)
// resumes from the deepest reusable copy-on-write checkpoint instead. This
// harness measures what that buys on every Table I workload, for both
// snapshot-capable engines (binsym and the SymEx-VP-like one): instructions
// retired (the re-interpretation work — the headline metric), wall-clock,
// and the snapshot counters (hits/misses/captures/evictions/pages-copied).
//
// Path counts are printed per row and checked against the replay
// configuration — snapshots may only change cost, never the explored path
// set; the harness exits non-zero on drift.
//
// Each row is also emitted as a JSON line into BENCH_snapshots.json (cwd),
// the trajectory file CI's perf-smoke step archives.
//
//   bench_ablation_snapshots [--quick] [--jobs N]
//
// --quick caps the paths per exploration (CI smoke); scheduling is
// identical with snapshots on and off, so the drift check stays exact even
// under a path budget.
#include <cstdio>
#include <cstring>

#include "engines.hpp"

using namespace binsym;

int main(int argc, char** argv) {
  bool quick = false;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = bench::parse_jobs_arg(argv[++i]);
    }
  }
  const uint64_t max_paths = quick ? 400 : UINT64_MAX;

  isa::OpcodeTable table;
  isa::Decoder decoder(table);
  spec::Registry registry;
  spec::install_rv32im(registry, table);

  std::FILE* json = std::fopen("BENCH_snapshots.json", "w");

  std::printf(
      "ABLATION: SNAPSHOT/FORK EXECUTION — replay-per-flip vs checkpoint "
      "resume%s\n",
      quick ? " (quick)" : "");
  std::printf("%-16s %-8s %-8s %8s %12s %8s %9s %8s %8s %9s %7s\n",
              "Benchmark", "engine", "config", "paths", "instructions",
              "speedup", "seconds", "hits", "misses", "captures", "pages");

  int failures = 0;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads()) {
    core::Program program = workloads::load_workload_or_exit(table, info.name);
    bench::EngineSetup setup{decoder, registry, program};

    for (const char* engine : {"binsym", "vp"}) {
      uint64_t replay_paths = 0, replay_instructions = 0;
      for (bool snapshots : {false, true}) {
        core::EngineOptions options;
        options.max_paths = max_paths;
        options.jobs = jobs;
        options.snapshots = snapshots;
        core::EngineStats s = bench::explore_parallel(engine, setup, options);

        if (!snapshots) {
          replay_paths = s.paths;
          replay_instructions = s.instructions;
        }
        if (s.paths != replay_paths) ++failures;
        double speedup =
            s.instructions ? static_cast<double>(replay_instructions) /
                                 static_cast<double>(s.instructions)
                           : 0.0;

        auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
        std::printf(
            "%-16s %-8s %-8s %8llu %12llu %7.2fx %9.3f %8llu %8llu %9llu "
            "%7llu%s\n",
            info.name.c_str(), engine, snapshots ? "snapshot" : "replay",
            u(s.paths), u(s.instructions), speedup, s.seconds,
            u(s.snapshot_hits), u(s.snapshot_misses), u(s.snapshot_captures),
            u(s.snapshot_pages_copied),
            s.paths != replay_paths ? "  <- PATH-COUNT DRIFT" : "");
        if (json) {
          std::fprintf(
              json,
              "{\"workload\":\"%s\",\"engine\":\"%s\",\"config\":\"%s\","
              "\"quick\":%s,\"jobs\":%u,\"paths\":%llu,"
              "\"instructions\":%llu,\"speedup_instructions\":%.3f,"
              "\"seconds\":%.6f,\"snapshot_hits\":%llu,"
              "\"snapshot_misses\":%llu,\"snapshot_captures\":%llu,"
              "\"snapshot_evictions\":%llu,\"snapshot_pages_copied\":%llu}\n",
              info.name.c_str(), engine, snapshots ? "snapshot" : "replay",
              quick ? "true" : "false", jobs, u(s.paths), u(s.instructions),
              speedup, s.seconds, u(s.snapshot_hits), u(s.snapshot_misses),
              u(s.snapshot_captures), u(s.snapshot_evictions),
              u(s.snapshot_pages_copied));
        }
      }
    }
  }
  if (json) std::fclose(json);

  std::printf(
      "\nNotes: `speedup` is replay-instructions / snapshot-instructions — "
      "the share of re-interpretation work the checkpoints eliminate "
      "(deep workloads are the interesting rows; the path budget in quick "
      "mode truncates depth). Path counts must not move between configs. "
      "JSON lines: BENCH_snapshots.json\n");
  if (failures) {
    std::printf(
        "FAIL: %d configuration(s) drifted from the replay path count\n",
        failures);
    return 1;
  }
  return 0;
}
